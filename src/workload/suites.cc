#include "workload/suites.hh"

#include "common/logging.hh"

namespace powerchop
{

namespace
{

// ---------------------------------------------------------------------------
// Phase builders. Each returns a PhaseSpec preset for one behavioural
// archetype; the application models below compose and tweak them.
//
// Design rule: every phase's criticality scores sit far from the CDE
// thresholds on the intended side, so classification is robust to
// per-window sampling noise:
//   - MLC-critical phases:   L2Hit/insn >= 0.02   (AllWays)
//   - MLC-half phases:       L2Hit/insn ~  0.001,  WS << half ways
//   - MLC-idle phases:       L2Hit/insn ~= 0       (OneWay)
//   - BPU-critical phases:   MisPred diff >= 0.08  (on)
//   - BPU-idle phases:       MisPred diff ~= 0     (off)
//   - VPU phases:            SIMD frac >= 0.03 on, <= 0.006 off
// MLC-critical phases also make several passes over their working
// sets per occurrence, so re-warm after neighbouring gated phases is
// amortized the way the paper's long phases amortize it.
// ---------------------------------------------------------------------------

/** A scalar integer compute phase: tiny working set, easy branches,
 *  no SIMD. All three units are non-critical. */
PhaseSpec
scalarPhase(const std::string &name)
{
    PhaseSpec p;
    p.name = name;
    p.simdFrac = 0.0;
    p.fpFrac = 0.02;
    p.memFrac = 0.28;
    p.branchFrac = 0.05;
    p.fracBiased = 0.96;
    p.fracPattern = 0.0;
    p.fracCorrelated = 0.0;
    p.mem.workingSetBytes = 12 * 1024;   // fits L1 with the hot region
    p.mem.hotRegionFrac = 0.6;
    p.mem.randomFrac = 0.1;
    return p;
}

/** A scalar phase whose branches moderately favour the big predictor
 *  (the common SPEC case: the large BPU stays on). */
PhaseSpec
mixedBranchPhase(const std::string &name)
{
    PhaseSpec p = scalarPhase(name);
    p.fracBiased = 0.78;
    p.fracPattern = 0.09;
    p.fracCorrelated = 0.09;
    return p;
}

/** A vector-burst phase: SIMD intensity well above Threshold_VPU. */
PhaseSpec
vectorPhase(const std::string &name, double simd_frac)
{
    PhaseSpec p = mixedBranchPhase(name);
    p.simdFrac = simd_frac;
    p.fpFrac = 0.10;
    return p;
}

/** A sparse-vector phase: nonzero but sub-threshold SIMD, the regime
 *  where PowerChop beats idle timeouts (namd, Figure 16). */
PhaseSpec
sparseVectorPhase(const std::string &name, double simd_frac = 0.003)
{
    PhaseSpec p = scalarPhase(name);
    p.simdFrac = simd_frac;
    p.fpFrac = 0.15;
    return p;
}

/** A cache-resident phase: working set fits the full MLC but not L1,
 *  with enough passes per occurrence that the MLC is unambiguously
 *  critical (GemsFDTD's fitting regime, Figure 3). */
PhaseSpec
cacheFitPhase(const std::string &name, std::uint64_t ws_bytes)
{
    PhaseSpec p = mixedBranchPhase(name);
    p.memFrac = 0.32;
    p.mem.workingSetBytes = ws_bytes;
    p.mem.hotRegionFrac = 0.80;
    // Random-heavy within the set: the cache matters most for
    // accesses prefetchers cannot cover.
    p.mem.randomFrac = 0.5;
    return p;
}

/** A streaming phase: one-pass traversal far larger than the MLC;
 *  the MLC provides no benefit (lbm/libquantum regime). */
PhaseSpec
streamingPhase(const std::string &name)
{
    PhaseSpec p = scalarPhase(name);
    p.memFrac = 0.34;
    p.mem.workingSetBytes = 64ull * 1024 * 1024;
    p.mem.streaming = true;
    p.mem.hotRegionFrac = 0.85;
    p.mem.randomFrac = 0.02;
    return p;
}

/** A moderate-MLC phase: few but useful MLC hits over a set that
 *  needs more than one way but far less than all; PowerChop keeps
 *  half the ways. */
PhaseSpec
halfCachePhase(const std::string &name)
{
    PhaseSpec p = scalarPhase(name);
    p.memFrac = 0.24;
    p.mem.workingSetBytes = 160 * 1024;
    p.mem.hotRegionFrac = 0.99;
    p.mem.randomFrac = 0.25;
    return p;
}

/** Give a phase a moderate MLC-resident working set (most compute
 *  codes still keep live data beyond L1, so their MLC stays on). */
PhaseSpec
withResidentSet(PhaseSpec p, std::uint64_t ws_bytes = 192 * 1024,
                double mem_frac = 0.30, double hot_frac = 0.88)
{
    p.memFrac = mem_frac;
    p.mem.workingSetBytes = ws_bytes;
    p.mem.hotRegionFrac = hot_frac;
    p.mem.randomFrac = 0.4;
    return p;
}

/** A hard-branch phase: global correlation and local patterns the
 *  small predictor cannot capture; the large BPU is critical. */
PhaseSpec
hardBranchPhase(const std::string &name, double branch_frac = 0.08)
{
    PhaseSpec p = scalarPhase(name);
    p.branchFrac = branch_frac;
    p.fracBiased = 0.30;
    p.fracPattern = 0.30;
    p.fracCorrelated = 0.30;
    return p;
}

/** An easy-branch phase: strongly biased branches both predictors
 *  capture; the large BPU is non-critical. */
PhaseSpec
easyBranchPhase(const std::string &name, double branch_frac = 0.08)
{
    PhaseSpec p = scalarPhase(name);
    p.branchFrac = branch_frac;
    p.fracBiased = 0.97;
    p.fracPattern = 0.0;
    p.fracCorrelated = 0.0;
    return p;
}

/** A mobile browsing phase: branch-dense (about 1 in 7 instructions,
 *  Section III-B) with modest memory traffic and easy branches. */
PhaseSpec
mobilePhase(const std::string &name)
{
    PhaseSpec p = scalarPhase(name);
    p.branchFrac = 0.14;
    p.memFrac = 0.24;
    p.fracBiased = 0.97;
    p.fracPattern = 0.0;
    p.fracCorrelated = 0.0;
    p.mem.workingSetBytes = 40 * 1024;
    p.mem.hotRegionFrac = 0.92;
    return p;
}

using Sched = std::vector<WorkloadSpec::ScheduleEntry>;

WorkloadSpec
make(const std::string &name, Suite suite, std::uint64_t seed,
     std::vector<PhaseSpec> phases, Sched schedule)
{
    WorkloadSpec w;
    w.name = name;
    w.suite = suite;
    w.seed = seed;
    w.phases = std::move(phases);
    w.schedule = std::move(schedule);
    w.validate();
    return w;
}

constexpr InsnCount K = 1000;
constexpr InsnCount M = 1000 * K;

} // namespace

// ---------------------------------------------------------------------------
// SPEC CPU2006 integer
// ---------------------------------------------------------------------------

std::vector<WorkloadSpec>
specIntSuite()
{
    std::vector<WorkloadSpec> out;

    // perlbench: interpreter-style code, hard branches, occasional
    // tiny vector bursts (Figure 16 shows PowerChop gating the VPU
    // where timeouts cannot).
    out.push_back(make(
        "perlbench", Suite::SpecInt, 101,
        {withResidentSet(hardBranchPhase("dispatch")),
         sparseVectorPhase("regex", 0.004),
         withResidentSet(mixedBranchPhase("gc"))},
        {{0, 1200 * K}, {1, 900 * K}, {2, 600 * K}, {0, 1500 * K},
         {1, 800 * K}}));

    // bzip2: compression loops over an MLC-resident block, with
    // pattern-heavy Huffman branches.
    out.push_back(make(
        "bzip2", Suite::SpecInt, 102,
        {hardBranchPhase("huffman", 0.07),
         cacheFitPhase("sort", 512 * 1024), streamingPhase("rle")},
        {{1, 4000 * K}, {2, 1000 * K}, {0, 800 * K}}));

    // gcc: large code footprint; phases swing between tiny working
    // sets and streaming IR walks, so the MLC is 1-way much of the
    // time (Figure 10).
    out.push_back(make(
        "gcc", Suite::SpecInt, 103,
        {scalarPhase("parse"), streamingPhase("ir-walk"),
         hardBranchPhase("regalloc", 0.07), scalarPhase("emit")},
        {{0, 800 * K}, {1, 1500 * K}, {2, 900 * K}, {3, 700 * K},
         {1, 1300 * K}}));

    // mcf: pointer chasing over a huge graph; memory-bound with the
    // MLC rarely useful.
    {
        PhaseSpec chase = streamingPhase("graph-chase");
        chase.mem.randomFrac = 0.5;
        chase.branchFrac = 0.06;
        out.push_back(make(
            "mcf", Suite::SpecInt, 104,
            {chase, cacheFitPhase("reprice", 512 * 1024)},
            {{0, 2400 * K}, {1, 1200 * K}, {0, 2000 * K}}));
    }

    // gobmk: Figure 1's variable vector-op intensity; branchy board
    // evaluation over an MLC-resident cache of positions.
    {
        PhaseSpec eval = hardBranchPhase("eval", 0.08);
        eval.memFrac = 0.30;
        eval.mem.workingSetBytes = 256 * 1024;
        eval.mem.hotRegionFrac = 0.80;
        eval.mem.randomFrac = 0.3;
        out.push_back(make(
            "gobmk", Suite::SpecInt, 105,
            {vectorPhase("pattern-match", 0.035),
             withResidentSet(sparseVectorPhase("search", 0.002)), eval},
            {{0, 600 * K}, {1, 1100 * K}, {2, 3600 * K}, {1, 900 * K},
             {0, 500 * K}}));
    }

    // hmmer: profile HMM scoring: highly biased inner-loop branches,
    // so the large BPU is gated a notable fraction (Figure 10).
    out.push_back(make(
        "hmmer", Suite::SpecInt, 106,
        {easyBranchPhase("viterbi", 0.06), halfCachePhase("seqdb")},
        {{0, 2100 * K}, {1, 900 * K}}));

    // sjeng: chess search; hard global-correlated branches.
    out.push_back(make(
        "sjeng", Suite::SpecInt, 107,
        {withResidentSet(hardBranchPhase("search", 0.09), 384 * 1024),
         withResidentSet(mixedBranchPhase("movegen")),
         withResidentSet(hardBranchPhase("qsearch", 0.08), 384 * 1024)},
        {{0, 1500 * K}, {1, 600 * K}, {2, 1200 * K}}));

    // libquantum: streaming over the quantum register array; MLC
    // 1-way for much of execution (Figure 10).
    out.push_back(make(
        "libquantum", Suite::SpecInt, 108,
        {streamingPhase("gate-apply"), easyBranchPhase("control", 0.05)},
        {{0, 2700 * K}, {1, 450 * K}}));

    // h264ref: motion estimation with vector bursts separated by
    // long scalar stretches (Figure 16 benefit case), an MLC-resident
    // reference frame, and a streaming CAVLC bitstream pass.
    PhaseSpec cavlc = streamingPhase("cavlc");
    cavlc.simdFrac = 0.003;
    cavlc.memFrac = 0.26;
    out.push_back(make(
        "h264", Suite::SpecInt, 109,
        {vectorPhase("sad", 0.06), cavlc,
         cacheFitPhase("refframe", 640 * 1024)},
        {{2, 4000 * K}, {1, 1200 * K}, {0, 700 * K}}));

    // astar: pathfinding; the open-list is MLC-resident while node
    // expansion streams through the map arrays.
    PhaseSpec astar_expand = streamingPhase("expand");
    astar_expand.branchFrac = 0.07;
    astar_expand.fracBiased = 0.4;
    astar_expand.fracPattern = 0.25;
    astar_expand.fracCorrelated = 0.25;
    out.push_back(make(
        "astar", Suite::SpecInt, 110,
        {astar_expand, cacheFitPhase("openlist", 512 * 1024),
         scalarPhase("heuristic")},
        {{1, 3600 * K}, {0, 1400 * K}, {2, 600 * K}}));

    return out;
}

// ---------------------------------------------------------------------------
// SPEC CPU2006 floating point
// ---------------------------------------------------------------------------

std::vector<WorkloadSpec>
specFpSuite()
{
    std::vector<WorkloadSpec> out;

    // milc: lattice QCD; vector-heavy streaming through large fields
    // with biased loop branches. One of the paper's biggest power
    // winners (MLC and BPU gated; VPU stays on).
    {
        PhaseSpec su3 = streamingPhase("su3-mult");
        su3.simdFrac = 0.15;
        su3.fpFrac = 0.2;
        su3.branchFrac = 0.03;
        su3.fracBiased = 0.97;
        out.push_back(make(
            "milc", Suite::SpecFp, 201,
            {su3, easyBranchPhase("gauge", 0.04)},
            {{0, 2400 * K}, {1, 600 * K}}));
    }

    // namd: molecular dynamics with sparse, uniformly scattered
    // vector ops; the headline PowerChop-vs-timeout case (Figure 16).
    out.push_back(make(
        "namd", Suite::SpecFp, 202,
        {withResidentSet(sparseVectorPhase("pairlist", 0.004),
                          160 * 1024, 0.24, 0.99),
         withResidentSet(sparseVectorPhase("forces", 0.006),
                          160 * 1024, 0.24, 0.99)},
        {{0, 1800 * K}, {1, 1800 * K}}));

    // GemsFDTD: Figure 3's alternation between an MLC-resident field
    // region and streaming sweeps that defeat any cache; the FDTD
    // update kernels are vector FP, so the VPU stays on.
    PhaseSpec gems_field = cacheFitPhase("field-update", 768 * 1024);
    gems_field.simdFrac = 0.03;
    gems_field.fpFrac = 0.15;
    PhaseSpec gems_sweep = streamingPhase("sweep");
    gems_sweep.simdFrac = 0.03;
    gems_sweep.fpFrac = 0.15;
    out.push_back(make(
        "gems", Suite::SpecFp, 203,
        {gems_field, gems_sweep, scalarPhase("boundary")},
        {{0, 2400 * K}, {1, 1600 * K}, {2, 400 * K}, {0, 2200 * K},
         {1, 1800 * K}}));

    // lbm: lattice Boltzmann; pure streaming with very biased
    // branches -> BPU and MLC both gated heavily (Figure 10).
    {
        PhaseSpec stream = streamingPhase("collide-stream");
        stream.branchFrac = 0.03;
        stream.fracBiased = 0.97;
        stream.fpFrac = 0.22;
        stream.simdFrac = 0.04;
        out.push_back(make(
            "lbm", Suite::SpecFp, 204,
            {stream},
            {{0, 3000 * K}}));
    }

    // soplex: simplex LP; one vector phase and one vector-lean
    // column-streaming phase (about 20% VPU gating overall, Section
    // V-C), over an MLC-resident basis matrix.
    PhaseSpec soplex_pivot = streamingPhase("pivot");
    soplex_pivot.simdFrac = 0.004;
    soplex_pivot.fpFrac = 0.15;
    PhaseSpec soplex_basis = cacheFitPhase("basis", 512 * 1024);
    soplex_basis.simdFrac = 0.04;
    soplex_basis.fpFrac = 0.12;
    out.push_back(make(
        "soplex", Suite::SpecFp, 205,
        {vectorPhase("pricing", 0.08), soplex_pivot, soplex_basis},
        {{2, 3200 * K}, {1, 900 * K}, {0, 1500 * K}}));

    // sphinx3: speech decoding; vector-heavy GMM scoring keeps the
    // VPU mostly on; search phases are branchy.
    out.push_back(make(
        "sphinx", Suite::SpecFp, 206,
        {vectorPhase("gmm-score", 0.12), hardBranchPhase("search", 0.07)},
        {{0, 1900 * K}, {1, 800 * K}, {0, 1700 * K}, {1, 600 * K}}));

    // povray: ray tracing; scalar FP with data-dependent branches.
    out.push_back(make(
        "povray", Suite::SpecFp, 207,
        {withResidentSet(hardBranchPhase("trace", 0.08), 256 * 1024),
         withResidentSet(mixedBranchPhase("shade")),
         halfCachePhase("scene")},
        {{0, 1400 * K}, {1, 900 * K}, {2, 700 * K}}));

    return out;
}

// ---------------------------------------------------------------------------
// PARSEC
// ---------------------------------------------------------------------------

std::vector<WorkloadSpec>
parsecSuite()
{
    std::vector<WorkloadSpec> out;

    // blackscholes: small kernels, heavy SIMD, tiny working set.
    out.push_back(make(
        "blackscholes", Suite::Parsec, 301,
        {vectorPhase("bs-kernel", 0.14), scalarPhase("portfolio")},
        {{0, 2100 * K}, {1, 900 * K}}));

    // bodytrack: vision pipeline alternating vectorizable filters and
    // branchy particle weighting over an MLC-resident frame.
    PhaseSpec particle = streamingPhase("particle");
    particle.branchFrac = 0.07;
    particle.fracBiased = 0.35;
    particle.fracPattern = 0.3;
    particle.fracCorrelated = 0.25;
    out.push_back(make(
        "bodytrack", Suite::Parsec, 302,
        {vectorPhase("filter", 0.06), particle,
         cacheFitPhase("frame", 512 * 1024)},
        {{2, 3400 * K}, {1, 1200 * K}, {0, 900 * K}}));

    // canneal: random pointer chasing over a netlist; cache-hostile.
    {
        PhaseSpec swap = streamingPhase("swap");
        swap.mem.randomFrac = 0.6;
        out.push_back(make(
            "canneal", Suite::Parsec, 303,
            {swap, scalarPhase("anneal-ctl")},
            {{0, 2400 * K}, {1, 600 * K}}));
    }

    // dedup: chunk hashing with rare SIMD; the VPU is gated over 90%
    // of the time (Section V-C).
    out.push_back(make(
        "dedup", Suite::Parsec, 304,
        {sparseVectorPhase("hash", 0.003), halfCachePhase("dictionary"),
         easyBranchPhase("pipeline", 0.06)},
        {{0, 1200 * K}, {1, 1100 * K}, {2, 700 * K}}));

    // streamcluster: vector distance computations streaming through
    // points; the MLC is 1-way for much of execution (Figure 10).
    {
        PhaseSpec dist = streamingPhase("distances");
        dist.simdFrac = 0.12;
        dist.fpFrac = 0.2;
        out.push_back(make(
            "streamcluster", Suite::Parsec, 305,
            {dist, scalarPhase("centers")},
            {{0, 2600 * K}, {1, 400 * K}}));
    }

    // fluidanimate: particle grid; mixed vector and cache phases.
    PhaseSpec rebuild = streamingPhase("rebuild");
    rebuild.simdFrac = 0.002;
    PhaseSpec fluid_grid = cacheFitPhase("grid", 512 * 1024);
    fluid_grid.simdFrac = 0.025;
    out.push_back(make(
        "fluidanimate", Suite::Parsec, 306,
        {vectorPhase("density", 0.04), fluid_grid, rebuild},
        {{1, 3200 * K}, {2, 1000 * K}, {0, 1000 * K}}));

    return out;
}

// ---------------------------------------------------------------------------
// MobileBench R-GWB (browsing on the mobile design point)
// ---------------------------------------------------------------------------

std::vector<WorkloadSpec>
mobileBenchSuite()
{
    std::vector<WorkloadSpec> out;

    // Browsing models share an archetype: branch-dense layout/scroll
    // phases where the small predictor suffices, interleaved with
    // harder DOM/JS phases (Figure 2), light SIMD except during image
    // decode, and decode bursts through the MLC.
    auto browse = [](const std::string &app, std::uint64_t seed,
                     double hard_share, double img_ws_kb,
                     double simd = 0.001) {
        PhaseSpec layout = mobilePhase("layout");
        layout.simdFrac = simd;
        layout.memFrac = 0.26;
        layout.mem.workingSetBytes = 320 * 1024;
        layout.mem.hotRegionFrac = 0.93;
        layout.mem.randomFrac = 0.5;

        PhaseSpec script = mobilePhase("script");
        script.memFrac = 0.26;
        script.mem.workingSetBytes = 320 * 1024;
        script.mem.hotRegionFrac = 0.93;
        script.mem.randomFrac = 0.5;
        script.fracBiased = 0.35;
        script.fracPattern = 0.30;
        script.fracCorrelated = 0.25;

        PhaseSpec decode = mobilePhase("img-decode");
        decode.simdFrac = 0.05;
        decode.memFrac = 0.30;
        decode.branchFrac = 0.06;
        decode.mem.workingSetBytes =
            static_cast<std::uint64_t>(img_ws_kb) * 1024;
        decode.mem.hotRegionFrac = 0.82;

        PhaseSpec idle = mobilePhase("cached-scroll");
        idle.memFrac = 0.18;
        idle.mem.workingSetBytes = 80 * 1024;
        idle.mem.hotRegionFrac = 0.93;

        InsnCount total = 2700 * K;
        InsnCount hard = static_cast<InsnCount>(total * hard_share);
        InsnCount easy = total - hard;

        return make(app, Suite::MobileBench, seed,
                    {layout, script, decode, idle},
                    {{0, easy / 2}, {1, hard}, {2, 400 * K},
                     {3, easy / 2}});
    };

    // Image working sets fit half the mobile MLC (1MB), matching the
    // paper's observation that mobile MLC gating is mostly partial.
    out.push_back(browse("amazon", 401, 0.25, 700));
    out.push_back(browse("bbc", 402, 0.40, 900));
    out.push_back(browse("cnn", 403, 0.45, 800));
    out.push_back(browse("ebay", 404, 0.30, 600));
    out.push_back(browse("google", 405, 0.20, 300));
    out.push_back(browse("msn", 406, 0.50, 850));

    return out;
}

// ---------------------------------------------------------------------------
// Aggregations
// ---------------------------------------------------------------------------

std::vector<WorkloadSpec>
allWorkloads()
{
    std::vector<WorkloadSpec> out = specIntSuite();
    auto append = [&out](std::vector<WorkloadSpec> v) {
        for (auto &w : v)
            out.push_back(std::move(w));
    };
    append(specFpSuite());
    append(parsecSuite());
    append(mobileBenchSuite());
    return out;
}

std::vector<WorkloadSpec>
serverWorkloads()
{
    std::vector<WorkloadSpec> out = specIntSuite();
    for (auto &w : specFpSuite())
        out.push_back(std::move(w));
    for (auto &w : parsecSuite())
        out.push_back(std::move(w));
    return out;
}

std::vector<WorkloadSpec>
mobileWorkloads()
{
    return mobileBenchSuite();
}

WorkloadSpec
findWorkload(const std::string &name)
{
    for (auto &w : allWorkloads()) {
        if (w.name == name)
            return w;
    }
    fatal("unknown workload '%s'", name.c_str());
}

} // namespace powerchop
