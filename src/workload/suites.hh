/**
 * @file
 * The benchmark suite models: 29 named applications across SPEC
 * CPU2006 (INT and FP), PARSEC and MobileBench, matching the paper's
 * evaluation set (Section V-A).
 *
 * Each model is a synthetic reconstruction of the unit-demand
 * behaviour the paper reports for that application: per-phase SIMD
 * intensity (Figures 1, 15, 16), branch predictability (Figure 2),
 * and working-set behaviour (Figure 3). See DESIGN.md for the
 * substitution rationale.
 */

#ifndef POWERCHOP_WORKLOAD_SUITES_HH
#define POWERCHOP_WORKLOAD_SUITES_HH

#include <vector>

#include "workload/workload.hh"

namespace powerchop
{

/** The ten SPEC CPU2006 integer models. */
std::vector<WorkloadSpec> specIntSuite();

/** The seven SPEC CPU2006 floating-point models. */
std::vector<WorkloadSpec> specFpSuite();

/** The six PARSEC models. */
std::vector<WorkloadSpec> parsecSuite();

/** The six MobileBench R-GWB browsing models. */
std::vector<WorkloadSpec> mobileBenchSuite();

/** All 29 models: SPEC-INT + SPEC-FP + PARSEC + MobileBench. */
std::vector<WorkloadSpec> allWorkloads();

/** The 23 server-side models (SPEC + PARSEC, Section V-A). */
std::vector<WorkloadSpec> serverWorkloads();

/** The 6 mobile models (MobileBench). */
std::vector<WorkloadSpec> mobileWorkloads();

/**
 * Find a model by name.
 *
 * @param name e.g. "gobmk", "namd", "msn".
 * @return the spec; calls fatal() if unknown.
 */
WorkloadSpec findWorkload(const std::string &name);

} // namespace powerchop

#endif // POWERCHOP_WORKLOAD_SUITES_HH
