#include "workload/workload.hh"

#include "common/logging.hh"

namespace powerchop
{

const char *
suiteName(Suite s)
{
    switch (s) {
      case Suite::SpecInt:
        return "SPEC-INT";
      case Suite::SpecFp:
        return "SPEC-FP";
      case Suite::Parsec:
        return "PARSEC";
      case Suite::MobileBench:
        return "MobileBench";
    }
    panic("unknown Suite %d", static_cast<int>(s));
}

void
WorkloadSpec::validate() const
{
    if (phases.empty())
        fatal("%s: workload has no phases", name.c_str());
    if (schedule.empty())
        fatal("%s: workload has no schedule", name.c_str());
    for (const auto &p : phases)
        p.validate(name);
    for (const auto &e : schedule) {
        if (e.phase >= phases.size())
            fatal("%s: schedule references phase %u of %zu",
                  name.c_str(), e.phase, phases.size());
        if (e.insns == 0)
            fatal("%s: zero-length schedule entry", name.c_str());
    }
}

InsnCount
WorkloadSpec::scheduleLength() const
{
    InsnCount n = 0;
    for (const auto &e : schedule)
        n += e.insns;
    return n;
}

} // namespace powerchop
