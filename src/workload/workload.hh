/**
 * @file
 * Workload specifications: a named application model made of phases
 * and a schedule sequencing them over time.
 */

#ifndef POWERCHOP_WORKLOAD_WORKLOAD_HH
#define POWERCHOP_WORKLOAD_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "workload/phase.hh"

namespace powerchop
{

/** Benchmark suite an application model belongs to. */
enum class Suite : std::uint8_t
{
    SpecInt,
    SpecFp,
    Parsec,
    MobileBench,
};

/** @return the display name of a suite ("SPEC-INT" etc.). */
const char *suiteName(Suite s);

/**
 * A complete synthetic application model.
 *
 * The schedule is a sequence of (phase index, instruction count)
 * entries; when the schedule is exhausted it loops, so arbitrarily
 * long simulations recur through the same phases (as SimPoint-selected
 * regions do in the paper's methodology).
 */
struct WorkloadSpec
{
    std::string name = "workload";
    Suite suite = Suite::SpecInt;

    /** Seed for all workload randomness; fixed per application so
     *  every run of the same model is identical. */
    std::uint64_t seed = 1;

    /** The distinct phases (code clusters) of the application. */
    std::vector<PhaseSpec> phases;

    /** One schedule step: run phase `phase` for `insns` instructions. */
    struct ScheduleEntry
    {
        unsigned phase;
        InsnCount insns;
    };

    /** The phase schedule; loops when exhausted. */
    std::vector<ScheduleEntry> schedule;

    /** Validate the spec (phases, schedule indices). */
    void validate() const;

    /** Total instructions in one pass of the schedule. */
    InsnCount scheduleLength() const;
};

} // namespace powerchop

#endif // POWERCHOP_WORKLOAD_WORKLOAD_HH
