#!/usr/bin/env bash
# Chaos smoke for powerchopd: SIGKILL at random points, a fault-
# injecting proxy, SIGTERM drain, an over-cap connection storm, and
# journal compaction — each phase asserting the daemon's hardening
# invariants:
#
#   * warm restarts serve byte-identical payloads (cmp against a
#     direct campaign's report.json), no matter where the kill landed
#   * SIGTERM drains in-flight work, exits 3, drops nothing
#   * an over-cap storm is shed with BUSY; the daemon never crashes
#   * compaction shrinks cache.jsonl while warm-starting the
#     identical cache (cmp-asserted)
#
# Usage: tests/chaos/chaos_smoke.sh [workdir]
# Env:   CLI, BENCH, PROXY, SEED override the defaults below.
set -euo pipefail

CLI=${CLI:-./build/tools/powerchop}
BENCH=${BENCH:-./build/bench/bench_serve}
PROXY=${PROXY:-tests/chaos/faulty_proxy.py}
SEED=${SEED:-1234}
WORK=${1:-chaos_work}

MATRIX_W="perlbench"
MATRIX_M="full-power,powerchop"
INSNS=50000
CARGS="--workloads $MATRIX_W --machine server --modes $MATRIX_M \
       --insns $INSNS"
BSPEC="--workloads $MATRIX_W --machines server --modes $MATRIX_M \
       --insns $INSNS"

rm -rf "$WORK"
mkdir -p "$WORK"

dpid=""
ppid_proxy=""
cleanup() {
    [ -n "$dpid" ] && kill -9 "$dpid" 2>/dev/null || true
    [ -n "$ppid_proxy" ] && kill -9 "$ppid_proxy" 2>/dev/null || true
    wait 2>/dev/null || true
}
trap cleanup EXIT

wait_sock() { # path
    for _ in $(seq 100); do
        test -S "$1" && return 0
        sleep 0.1
    done
    echo "FAIL: socket $1 never appeared" >&2
    return 1
}

start_daemon() { # dir [extra flags...]
    local dir="$1"; shift
    # A SIGKILLed daemon leaves its socket file behind; remove it so
    # wait_sock sees the *new* daemon's bind, not the corpse's.
    rm -f "$dir/powerchopd.sock"
    "$CLI" serve "$dir" "$@" >> "$WORK/daemon.log" 2>&1 &
    dpid=$!
    wait_sock "$dir/powerchopd.sock"
}

echo "== phase 0: reference report (direct campaign) =="
"$CLI" campaign "$WORK/ref" $CARGS > /dev/null
test -s "$WORK/ref/report.json"

echo "== phase 1: SIGKILL at random points, warm restarts identical =="
# Each round: daemon under live bench load, SIGKILL after a seeded
# random delay, restart over the same dir, then the served report
# must still be byte-identical to the direct campaign's.
DELAYS=$(python3 -c "
import random
r = random.Random($SEED)
print(' '.join(f'{r.uniform(0.2, 0.9):.2f}' for _ in range(4)))")
round=0
for delay in $DELAYS; do
    round=$((round + 1))
    start_daemon "$WORK/kill9"
    "$BENCH" --socket "$WORK/kill9/powerchopd.sock" --threads 4 \
        --requests 1000000 --retries 2 $BSPEC > /dev/null 2>&1 &
    bpid=$!
    sleep "$delay"
    kill -9 "$dpid"
    wait "$dpid" 2>/dev/null || true
    dpid=""
    kill "$bpid" 2>/dev/null || true
    wait "$bpid" 2>/dev/null || true
    start_daemon "$WORK/kill9"
    "$CLI" client --socket "$WORK/kill9/powerchopd.sock" $CARGS \
        > "$WORK/kill9_report.json"
    cmp "$WORK/ref/report.json" "$WORK/kill9_report.json"
    kill -9 "$dpid" 2>/dev/null || true
    wait "$dpid" 2>/dev/null || true
    dpid=""
    echo "   round $round (killed at ${delay}s): byte-identical"
done

echo "== phase 2: faulty proxy (delays, bitflips, torn frames) =="
start_daemon "$WORK/proxy" --read-timeout-seconds 1 \
    --idle-timeout-seconds 5
python3 "$PROXY" --listen "$WORK/proxy/proxy.sock" \
    --target "$WORK/proxy/powerchopd.sock" --seed "$SEED" \
    >> "$WORK/proxy.log" 2>&1 &
ppid_proxy=$!
wait_sock "$WORK/proxy/proxy.sock"
ok=0
for i in $(seq 30); do
    if "$CLI" client --socket "$WORK/proxy/proxy.sock" \
        --retries 5 --timeout-seconds 3 $CARGS \
        > "$WORK/proxy_reply.json" 2>> "$WORK/proxy.log"; then
        if cmp -s "$WORK/ref/report.json" "$WORK/proxy_reply.json"
        then
            ok=$((ok + 1))
        fi
    fi
    kill -0 "$dpid" || {
        echo "FAIL: daemon died under proxy chaos" >&2; exit 1; }
done
kill -9 "$ppid_proxy" 2>/dev/null || true
wait "$ppid_proxy" 2>/dev/null || true
ppid_proxy=""
echo "   $ok/30 proxied requests served byte-identical through chaos"
test "$ok" -ge 1
# The daemon itself is unharmed: a clean-path request still matches.
"$CLI" client --socket "$WORK/proxy/powerchopd.sock" $CARGS \
    > "$WORK/proxy_clean.json"
cmp "$WORK/ref/report.json" "$WORK/proxy_clean.json"
"$CLI" client --socket "$WORK/proxy/powerchopd.sock" --stats \
    > "$WORK/proxy_stats.json"
python3 - "$WORK/proxy_stats.json" << 'EOF'
import json, sys
st = json.load(open(sys.argv[1]))
assert st["schema"] == "powerchop-serve-stats-v1", st
print(f"   daemon stats after chaos: requests={st['requests']} "
      f"errors={st['errors']} read_timeouts={st['read_timeouts']} "
      f"idle_reaped={st['idle_reaped']}")
EOF
kill -9 "$dpid" 2>/dev/null || true
wait "$dpid" 2>/dev/null || true
dpid=""

echo "== phase 3: SIGTERM drain exits 3, drops nothing, bench rides through =="
start_daemon "$WORK/drain"
# Bench rides through the restart on its retry policy.
"$BENCH" --socket "$WORK/drain/powerchopd.sock" --threads 2 \
    --requests 100000 --retries 8 $BSPEC \
    > "$WORK/drain_bench.out" 2>&1 &
bpid=$!
sleep 0.3
kill -TERM "$dpid"
rc=0; wait "$dpid" || rc=$?
dpid=""
test "$rc" -eq 3 || {
    echo "FAIL: drained daemon exited $rc, want 3" >&2; exit 1; }
grep -q ", 0 dropped in flight" "$WORK/daemon.log" || {
    echo "FAIL: drain dropped in-flight requests" >&2
    tail -5 "$WORK/daemon.log" >&2; exit 1; }
# Restart immediately: the bench's retries bridge the gap.
start_daemon "$WORK/drain"
rc=0; wait "$bpid" || rc=$?
test "$rc" -eq 0 || {
    echo "FAIL: bench did not ride through the restart (rc=$rc)" >&2
    tail -5 "$WORK/drain_bench.out" >&2; exit 1; }
grep -H "retries=" "$WORK/drain_bench.out"
kill -9 "$dpid" 2>/dev/null || true
wait "$dpid" 2>/dev/null || true
dpid=""
echo "   drain: exit 3, zero dropped, bench completed through restart"

echo "== phase 4: over-cap connection storm shed with BUSY =="
start_daemon "$WORK/storm" --max-conns 4 --sim-queue 2
python3 - "$WORK/storm/powerchopd.sock" << 'EOF'
import socket, sys
path = sys.argv[1]
busy = served = 0
conns = []
# Open far more connections than the cap, keeping earlier ones open:
# excess accepts must be answered BUSY and closed, unprompted.
for i in range(32):
    s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    s.settimeout(1)
    s.connect(path)
    conns.append(s)
for s in conns:
    try:
        head = s.recv(64)
    except socket.timeout:
        head = b""
    if head.startswith(b"BUSY "):
        busy += 1
        continue
    # No unsolicited frame: an admitted connection. Prove it serves.
    assert head == b"", head
    s.sendall(b"STATS\n")
    reply = s.recv(16)
    assert reply.startswith(b"OK "), reply
    served += 1
for s in conns:
    s.close()
print(f"   storm: {served} served, {busy} shed with BUSY")
assert busy >= 1, "no connection was shed"
assert served >= 1, "no connection was served"
EOF
kill -0 "$dpid" || {
    echo "FAIL: daemon died in the storm" >&2; exit 1; }
"$CLI" client --socket "$WORK/storm/powerchopd.sock" --stats \
    > "$WORK/storm_stats.json"
python3 - "$WORK/storm_stats.json" << 'EOF'
import json, sys
st = json.load(open(sys.argv[1]))
assert st["shed_connections"] >= 1, st
print(f"   daemon alive: shed_connections={st['shed_connections']}")
EOF
kill -9 "$dpid" 2>/dev/null || true
wait "$dpid" 2>/dev/null || true
dpid=""

echo "== phase 5: journal compaction, warm start identical =="
# A deliberately tiny cache (10 KiB) over many distinct keys: most
# journal records die by eviction, compaction must rewrite the file,
# and a warm restart must still serve the survivors byte-identically.
start_daemon "$WORK/compact" --cache-mb 0.01 --compact-ratio 0.4 \
    --compact-min-records 20
python3 - "$WORK/compact/powerchopd.sock" "$WORK" << 'EOF'
import json, socket, sys

def request(path, line):
    s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    s.settimeout(30)
    s.connect(path)
    s.sendall(line.encode() + b"\n")
    buf = b""
    while b"\n" not in buf:
        chunk = s.recv(65536)
        assert chunk, "daemon hung up mid-reply"
        buf += chunk
    head, _, rest = buf.partition(b"\n")
    status, length = head.split(b" ", 1)
    want = int(length)
    while len(rest) < want:
        chunk = s.recv(65536)
        assert chunk, "daemon hung up mid-payload"
        rest += chunk
    s.close()
    return status.decode(), rest

path, work = sys.argv[1], sys.argv[2]
spec = ('{{"workloads":["perlbench"],"machines":["server"],'
        '"modes":["full-power"],"insns":{}}}')
# 60 distinct keys x ~830 B payloads vs a 10 KiB budget: ~48
# evictions, far past the 0.4 dead ratio.
for i in range(60):
    status, _ = request(path, "SIM " + spec.format(20000 + i))
    assert status == "OK", (i, status)
status, last = request(path, "SIM " + spec.format(20000 + 59))
assert status == "HIT", status
open(f"{work}/compact_last.json", "wb").write(last)
status, stats = request(path, "STATS")
st = json.loads(stats)
assert st["compactions"] >= 1, st
assert st["journal_records"] < 60, st
assert st["evictions"] > 0, st
print(f"   compactions={st['compactions']} "
      f"journal_records={st['journal_records']} "
      f"dead={st['journal_dead_records']} (60 inserted)")
EOF
# SIGKILL (no graceful flush), then prove the compacted journal
# warm-starts the identical cache: the same SIM is a pure HIT with
# byte-identical payload.
kill -9 "$dpid"
wait "$dpid" 2>/dev/null || true
dpid=""
JLINES=$(wc -l < "$WORK/compact/cache.jsonl")
test "$JLINES" -lt 60 || {
    echo "FAIL: journal has $JLINES lines, compaction never ran" >&2
    exit 1; }
start_daemon "$WORK/compact" --cache-mb 0.01 --compact-ratio 0.4 \
    --compact-min-records 20
python3 - "$WORK/compact/powerchopd.sock" "$WORK" << 'EOF'
import json, socket, sys

def request(path, line):
    s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    s.settimeout(30)
    s.connect(path)
    s.sendall(line.encode() + b"\n")
    buf = b""
    while b"\n" not in buf:
        chunk = s.recv(65536)
        assert chunk, "daemon hung up mid-reply"
        buf += chunk
    head, _, rest = buf.partition(b"\n")
    status, length = head.split(b" ", 1)
    want = int(length)
    while len(rest) < want:
        chunk = s.recv(65536)
        assert chunk, "daemon hung up mid-payload"
        rest += chunk
    s.close()
    return status.decode(), rest

path, work = sys.argv[1], sys.argv[2]
spec = ('{"workloads":["perlbench"],"machines":["server"],'
        '"modes":["full-power"],"insns":20059}')
status, payload = request(path, "SIM " + spec)
assert status == "HIT", f"warm start lost the cache: {status}"
want = open(f"{work}/compact_last.json", "rb").read()
assert payload == want, "warm-started payload differs"
status, stats = request(path, "STATS")
st = json.loads(stats)
assert st["warm_started"] > 0, st
assert st["simulated_jobs"] == 0, st
print(f"   warm start: {st['warm_started']} entries, HIT "
      f"byte-identical after compaction + SIGKILL")
EOF
kill -9 "$dpid" 2>/dev/null || true
wait "$dpid" 2>/dev/null || true
dpid=""

echo "chaos smoke OK (seed $SEED)"
