#!/usr/bin/env python3
"""Seeded fault-injecting Unix-socket proxy for powerchopd chaos tests.

Sits between a client and a running powerchopd, forwarding bytes in
both directions while injecting transport faults chosen by a seeded
RNG, so a chaos run is reproducible from its seed:

  delay       hold a chunk for 10..150 ms before forwarding
  bitflip     flip one bit of a client->server chunk (garbled request)
  truncate    forward only half a chunk, then hang up (torn frame)
  disconnect  drop the connection between chunks, mid-conversation

The daemon under test must answer garbage with ERR, reap the stalls
via its read deadlines, and never crash; a retrying client must ride
through the torn replies. Stdlib only: no dependencies beyond python3.

Usage:
  faulty_proxy.py --listen proxy.sock --target powerchopd.sock \
      --seed 1234 [--faults delay,bitflip,truncate,disconnect]
"""

import argparse
import os
import random
import socket
import sys
import threading
import time


def parse_args():
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("--listen", required=True,
                   help="Unix socket path to listen on")
    p.add_argument("--target", required=True,
                   help="Unix socket path of the real daemon")
    p.add_argument("--seed", type=int, default=1234)
    p.add_argument("--faults",
                   default="delay,bitflip,truncate,disconnect",
                   help="comma list of fault kinds to enable")
    p.add_argument("--fault-rate", type=float, default=0.25,
                   help="per-chunk probability of injecting a fault")
    return p.parse_args()


def flip_bit(data, rng):
    i = rng.randrange(len(data))
    return data[:i] + bytes([data[i] ^ (1 << rng.randrange(8))]) + \
        data[i + 1:]


def pump(src, dst, rng, faults, rate, to_server, stats, lock):
    """Forward src->dst, injecting at most one fault per chunk."""
    try:
        while True:
            data = src.recv(65536)
            if not data:
                break
            fault = None
            if rng.random() < rate:
                fault = rng.choice(faults)
            if fault == "delay":
                time.sleep(rng.uniform(0.01, 0.15))
            elif fault == "bitflip" and to_server:
                # Only garble requests: a garbled *response* with a
                # valid frame would be undetectable by the client,
                # and the point is to attack the daemon's parser.
                data = flip_bit(data, rng)
            elif fault == "truncate":
                dst.sendall(data[:max(1, len(data) // 2)])
                with lock:
                    stats[fault] = stats.get(fault, 0) + 1
                break
            elif fault == "disconnect":
                with lock:
                    stats[fault] = stats.get(fault, 0) + 1
                break
            if fault in ("delay", "bitflip"):
                with lock:
                    stats[fault] = stats.get(fault, 0) + 1
            dst.sendall(data)
    except OSError:
        pass
    finally:
        for s in (src, dst):
            try:
                s.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass


def serve(args):
    faults = [f.strip() for f in args.faults.split(",") if f.strip()]
    stats = {}
    lock = threading.Lock()
    try:
        os.unlink(args.listen)
    except FileNotFoundError:
        pass
    ls = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    ls.bind(args.listen)
    ls.listen(64)
    print(f"faulty_proxy: {args.listen} -> {args.target} "
          f"seed={args.seed} faults={','.join(faults)} "
          f"rate={args.fault_rate}", flush=True)
    conn_id = 0
    while True:
        client, _ = ls.accept()
        conn_id += 1
        try:
            upstream = socket.socket(socket.AF_UNIX,
                                     socket.SOCK_STREAM)
            upstream.connect(args.target)
        except OSError as e:
            print(f"faulty_proxy: upstream dial failed: {e}",
                  file=sys.stderr, flush=True)
            client.close()
            continue
        for to_server, (src, dst) in ((True, (client, upstream)),
                                      (False, (upstream, client))):
            # One RNG per pump direction, derived from (seed, conn,
            # direction): the fault schedule is a pure function of
            # the command line, not of thread interleaving.
            rng = random.Random((args.seed << 20) ^
                                (conn_id * 2 + int(to_server)))
            threading.Thread(
                target=pump,
                args=(src, dst, rng, faults, args.fault_rate,
                      to_server, stats, lock),
                daemon=True).start()


def main():
    args = parse_args()
    try:
        serve(args)
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
