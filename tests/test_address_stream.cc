/**
 * @file
 * Unit tests for the per-phase address stream generator.
 */

#include <set>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "workload/address_stream.hh"

using namespace powerchop;

TEST(AddressStream, LoopingStaysInWorkingSet)
{
    AddressStreamSpec spec;
    spec.base = 0x100000;
    spec.workingSetBytes = 4096;
    spec.streaming = false;
    spec.randomFrac = 0.5;
    spec.hotRegionFrac = 0.0;
    AddressStream s(spec);
    Rng rng(1);
    for (int i = 0; i < 2000; ++i) {
        Addr a = s.next(rng);
        ASSERT_GE(a, spec.base);
        ASSERT_LT(a, spec.base + spec.workingSetBytes);
    }
}

TEST(AddressStream, HotRegionBelowBase)
{
    AddressStreamSpec spec;
    spec.base = 0x100000;
    spec.hotRegionFrac = 1.0;
    spec.hotRegionBytes = 4096;
    AddressStream s(spec);
    Rng rng(2);
    for (int i = 0; i < 500; ++i) {
        Addr a = s.next(rng);
        ASSERT_GE(a, spec.base - spec.hotRegionBytes);
        ASSERT_LT(a, spec.base);
    }
}

TEST(AddressStream, StreamingAdvancesWithoutReuse)
{
    AddressStreamSpec spec;
    spec.base = 0x200000;
    spec.workingSetBytes = 1 << 20;
    spec.streaming = true;
    spec.randomFrac = 0.0;
    spec.hotRegionFrac = 0.0;
    AddressStream s(spec);
    Rng rng(3);
    Addr prev = s.next(rng);
    for (int i = 0; i < 5000; ++i) {
        Addr a = s.next(rng);
        ASSERT_EQ(a, prev + spec.strideBytes);
        prev = a;
    }
}

TEST(AddressStream, SequentialWalkWrapsInLoopingMode)
{
    AddressStreamSpec spec;
    spec.base = 0x300000;
    spec.workingSetBytes = 256;   // four 64B lines
    spec.streaming = false;
    spec.randomFrac = 0.0;
    spec.hotRegionFrac = 0.0;
    AddressStream s(spec);
    Rng rng(4);
    std::set<Addr> seen;
    for (int i = 0; i < 16; ++i)
        seen.insert(s.next(rng));
    EXPECT_EQ(seen.size(), 4u);
}

TEST(AddressStream, ResetRestartsCursor)
{
    AddressStreamSpec spec;
    spec.base = 0x400000;
    spec.randomFrac = 0.0;
    spec.hotRegionFrac = 0.0;
    AddressStream s(spec);
    Rng rng(5);
    Addr first = s.next(rng);
    s.next(rng);
    s.reset();
    EXPECT_EQ(s.next(rng), first);
}

TEST(AddressStream, ValidatesSpec)
{
    AddressStreamSpec bad;
    bad.workingSetBytes = 16;
    bad.strideBytes = 64;
    EXPECT_THROW(AddressStream{bad}, FatalError);

    AddressStreamSpec bad2;
    bad2.hotRegionFrac = 1.5;
    EXPECT_THROW(AddressStream{bad2}, FatalError);
}
