/**
 * @file
 * Unit tests for branch predictors, BTBs and the gateable BPU
 * complex.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "uarch/bimodal.hh"
#include "uarch/bpu_complex.hh"
#include "uarch/btb.hh"
#include "uarch/gshare.hh"
#include "uarch/local_predictor.hh"
#include "uarch/tournament.hh"
#include "workload/branch_behavior.hh"

using namespace powerchop;

namespace
{

/** Drive a predictor with one synthetic branch process and return its
 *  accuracy over n outcomes (after a warmup). */
double
accuracyOn(DirectionPredictor &pred, const BranchBehavior &beh,
           int n = 20000, Addr pc = 0x4000)
{
    BranchOutcomeEngine eng(99);
    BranchRuntime rt;
    int correct = 0;
    for (int i = 0; i < n; ++i) {
        bool taken = eng.nextOutcome(beh, rt);
        bool p = pred.predictAndTrain(pc, taken);
        if (i >= n / 4)
            correct += (p == taken);
    }
    return correct / (n * 0.75);
}

BranchBehavior
makeBehavior(BranchKind kind)
{
    BranchBehavior b;
    b.kind = kind;
    b.noise = 0.0;
    return b;
}

} // namespace

// --- bimodal ------------------------------------------------------------------

TEST(Bimodal, LearnsBiasedBranches)
{
    BimodalPredictor p(1024);
    BranchBehavior b = makeBehavior(BranchKind::Biased);
    b.biasTaken = 0.95;
    EXPECT_GT(accuracyOn(p, b), 0.90);
}

TEST(Bimodal, CannotLearnPatterns)
{
    BimodalPredictor p(1024);
    BranchBehavior b = makeBehavior(BranchKind::Pattern);
    b.patternBits = 0b0101;  // alternating, worst case for 2-bit
    b.patternLen = 4;
    EXPECT_LT(accuracyOn(p, b), 0.70);
}

TEST(Bimodal, RejectsNonPowerOfTwo)
{
    EXPECT_THROW(BimodalPredictor(1000), FatalError);
}

TEST(Bimodal, ResetClearsState)
{
    BimodalPredictor p(64);
    for (int i = 0; i < 100; ++i)
        p.predictAndTrain(0x40, true);
    p.reset();
    // Counter back to weakly-not-taken: first prediction is NT.
    BimodalPredictor fresh(64);
    EXPECT_EQ(p.predictAndTrain(0x40, true),
              fresh.predictAndTrain(0x40, true));
}

// --- local two-level -----------------------------------------------------------

TEST(LocalPredictor, LearnsShortPatterns)
{
    LocalPredictor p(1024, 10, 1024);
    BranchBehavior b = makeBehavior(BranchKind::Pattern);
    b.patternBits = 0b011011;
    b.patternLen = 6;
    EXPECT_GT(accuracyOn(p, b), 0.95);
}

TEST(LocalPredictor, CannotLearnGlobalCorrelation)
{
    LocalPredictor p(1024, 10, 1024);
    // Alternate a random churn branch with a correlated branch at a
    // different PC; the local predictor sees no cross-branch history.
    BranchOutcomeEngine eng(7);
    BranchBehavior churn = makeBehavior(BranchKind::Random);
    BranchBehavior corr = makeBehavior(BranchKind::GlobalCorrelated);
    corr.historyMask = 0b1;  // equals the previous outcome
    BranchRuntime rt_churn, rt_corr;
    int correct = 0, n = 20000;
    for (int i = 0; i < n; ++i) {
        eng.nextOutcome(churn, rt_churn);
        bool taken = eng.nextOutcome(corr, rt_corr);
        correct += (p.predictAndTrain(0x8000, taken) == taken);
    }
    EXPECT_LT(correct / double(n), 0.75);
}

TEST(LocalPredictor, ValidatesGeometry)
{
    EXPECT_THROW(LocalPredictor(1000, 10, 1024), FatalError);
    EXPECT_THROW(LocalPredictor(1024, 0, 1024), FatalError);
    EXPECT_THROW(LocalPredictor(1024, 20, 1024), FatalError);
}

// --- gshare ---------------------------------------------------------------------

TEST(Gshare, LearnsGlobalCorrelation)
{
    GsharePredictor p(4096, 8);
    BranchOutcomeEngine eng(11);
    BranchBehavior churn = makeBehavior(BranchKind::Biased);
    churn.biasTaken = 0.5;
    BranchBehavior corr = makeBehavior(BranchKind::GlobalCorrelated);
    corr.historyMask = 0b11;
    BranchRuntime rt_churn, rt_corr;
    int correct = 0, n = 40000, counted = 0;
    for (int i = 0; i < n; ++i) {
        bool t1 = eng.nextOutcome(churn, rt_churn);
        p.predictAndTrain(0x100, t1);
        bool taken = eng.nextOutcome(corr, rt_corr);
        bool pred = p.predictAndTrain(0x200, taken);
        if (i > n / 2) {
            correct += (pred == taken);
            ++counted;
        }
    }
    EXPECT_GT(correct / double(counted), 0.85);
}

TEST(Gshare, HistoryTracked)
{
    GsharePredictor p(256, 4);
    p.predictAndTrain(0x10, true);
    p.predictAndTrain(0x10, false);
    p.predictAndTrain(0x10, true);
    EXPECT_EQ(p.history(), 0b101u);
}

TEST(Gshare, ResetClearsHistory)
{
    GsharePredictor p(256, 4);
    p.predictAndTrain(0x10, true);
    p.reset();
    EXPECT_EQ(p.history(), 0u);
}

// --- tournament -----------------------------------------------------------------

TEST(Tournament, BeatsBimodalOnPatterns)
{
    TournamentPredictor t;
    BimodalPredictor bi(1024);
    BranchBehavior b = makeBehavior(BranchKind::Pattern);
    b.patternBits = 0b0011;
    b.patternLen = 4;
    double acc_t = accuracyOn(t, b);
    double acc_b = accuracyOn(bi, b);
    EXPECT_GT(acc_t, acc_b + 0.2);
}

TEST(Tournament, MatchesBimodalOnBiased)
{
    TournamentPredictor t;
    BimodalPredictor bi(1024);
    BranchBehavior b = makeBehavior(BranchKind::Biased);
    b.biasTaken = 0.95;
    EXPECT_NEAR(accuracyOn(t, b), accuracyOn(bi, b), 0.05);
}

TEST(Tournament, TracksAccuracyStats)
{
    TournamentPredictor t;
    BranchBehavior b = makeBehavior(BranchKind::Biased);
    accuracyOn(t, b, 1000);
    EXPECT_EQ(t.lookups(), 1000u);
    EXPECT_LE(t.mispredicts(), t.lookups());
    EXPECT_GT(t.mispredictRate(), 0.0);
    t.resetWindow();
    EXPECT_EQ(t.windowLookups(), 0u);
    EXPECT_EQ(t.lookups(), 1000u);
}

// --- BTB ------------------------------------------------------------------------

TEST(Btb, HitsAfterInstall)
{
    Btb btb(64, 4);
    EXPECT_FALSE(btb.predictAndUpdate(0x100, 0x500));
    EXPECT_TRUE(btb.predictAndUpdate(0x100, 0x500));
}

TEST(Btb, DetectsTargetChange)
{
    Btb btb(64, 4);
    btb.predictAndUpdate(0x100, 0x500);
    EXPECT_FALSE(btb.predictAndUpdate(0x100, 0x600));
    EXPECT_TRUE(btb.predictAndUpdate(0x100, 0x600));
}

TEST(Btb, LruEvictsOldest)
{
    Btb btb(4, 4);  // one set
    btb.predictAndUpdate(0x10, 0x1);
    btb.predictAndUpdate(0x20, 0x2);
    btb.predictAndUpdate(0x30, 0x3);
    btb.predictAndUpdate(0x40, 0x4);
    // Touch 0x10 so 0x20 is LRU; install a fifth entry.
    EXPECT_TRUE(btb.predictAndUpdate(0x10, 0x1));
    btb.predictAndUpdate(0x50, 0x5);
    EXPECT_TRUE(btb.predictAndUpdate(0x10, 0x1));
    EXPECT_FALSE(btb.predictAndUpdate(0x20, 0x2));
}

TEST(Btb, ResetInvalidates)
{
    Btb btb(64, 4);
    btb.predictAndUpdate(0x100, 0x500);
    btb.reset();
    EXPECT_FALSE(btb.predictAndUpdate(0x100, 0x500));
}

TEST(Btb, ValidatesGeometry)
{
    EXPECT_THROW(Btb(100, 4), FatalError);
    EXPECT_THROW(Btb(64, 0), FatalError);
    EXPECT_THROW(Btb(64, 24), FatalError);
}

// --- BPU complex -----------------------------------------------------------------

TEST(BpuComplex, ActivePredictorSwitchesOnGating)
{
    BpuComplex bpu;
    // Train a pattern only the large side can learn.
    BranchOutcomeEngine eng(13);
    BranchBehavior b = makeBehavior(BranchKind::Pattern);
    b.patternBits = 0b0011;
    b.patternLen = 4;
    BranchRuntime rt;

    auto run = [&](int n) {
        int mis = 0;
        for (int i = 0; i < n; ++i) {
            bool taken = eng.nextOutcome(b, rt);
            mis += bpu.predict(0x1000, taken, 0x2000)
                       .directionMispredict;
        }
        return mis / double(n);
    };

    run(4000);               // warm up
    double on_rate = run(4000);
    bpu.gateLargeOff();
    EXPECT_FALSE(bpu.largeOn());
    double off_rate = run(4000);
    EXPECT_GT(off_rate, on_rate + 0.1);

    bpu.gateLargeOn();
    run(4000);               // re-warm
    double regated_rate = run(4000);
    EXPECT_LT(regated_rate, off_rate - 0.1);
}

TEST(BpuComplex, ShadowSurvivesGating)
{
    BpuComplex bpu;
    BranchOutcomeEngine eng(17);
    BranchBehavior b = makeBehavior(BranchKind::Pattern);
    b.patternBits = 0b0110;
    b.patternLen = 4;
    BranchRuntime rt;
    for (int i = 0; i < 8000; ++i)
        bpu.predict(0x3000, eng.nextOutcome(b, rt), 0x4000);

    bpu.gateLargeOff();
    bpu.resetWindowStats();
    for (int i = 0; i < 2000; ++i)
        bpu.predict(0x3000, eng.nextOutcome(b, rt), 0x4000);

    // The shadow large predictor kept its training, so its window
    // rate stays far below the small predictor's.
    EXPECT_LT(bpu.largeWindowMispredictRate(),
              bpu.smallWindowMispredictRate() - 0.1);
}

TEST(BpuComplex, IndirectUsesBtbOnly)
{
    BpuComplex bpu;
    EXPECT_TRUE(bpu.predictIndirect(0x100, 0x700).targetMiss);
    EXPECT_FALSE(bpu.predictIndirect(0x100, 0x700).targetMiss);
    // Branch counter untouched by indirect jumps.
    EXPECT_EQ(bpu.branches(), 0u);
}

TEST(BpuComplex, GatingLosesLargeBtbState)
{
    BpuComplex bpu;
    bpu.predictIndirect(0x100, 0x700);
    EXPECT_FALSE(bpu.predictIndirect(0x100, 0x700).targetMiss);
    bpu.gateLargeOff();
    bpu.gateLargeOn();
    // Large BTB state was lost while gated.
    EXPECT_TRUE(bpu.predictIndirect(0x100, 0x700).targetMiss);
}

TEST(BpuComplex, SmallBtbServesWhileGated)
{
    BpuComplex bpu;
    bpu.predictIndirect(0x100, 0x700);  // installs in both BTBs
    bpu.gateLargeOff();
    EXPECT_FALSE(bpu.predictIndirect(0x100, 0x700).targetMiss);
}
