/**
 * @file
 * Unit tests for the synthetic branch outcome processes.
 */

#include <bit>

#include <gtest/gtest.h>

#include "workload/branch_behavior.hh"

using namespace powerchop;

namespace
{

BranchBehavior
noiseless(BranchKind kind)
{
    BranchBehavior b;
    b.kind = kind;
    b.noise = 0.0;
    return b;
}

} // namespace

TEST(BranchBehavior, KindNames)
{
    EXPECT_STREQ(branchKindName(BranchKind::Biased), "Biased");
    EXPECT_STREQ(branchKindName(BranchKind::Random), "Random");
}

TEST(BranchBehavior, BiasedMatchesBias)
{
    BranchOutcomeEngine eng(1);
    BranchBehavior b = noiseless(BranchKind::Biased);
    b.biasTaken = 0.8;
    BranchRuntime rt;
    int taken = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        taken += eng.nextOutcome(b, rt);
    EXPECT_NEAR(taken / double(n), 0.8, 0.02);
}

TEST(BranchBehavior, PatternRepeatsExactly)
{
    BranchOutcomeEngine eng(2);
    BranchBehavior b = noiseless(BranchKind::Pattern);
    b.patternBits = 0b0110;
    b.patternLen = 4;
    BranchRuntime rt;
    for (int rep = 0; rep < 10; ++rep) {
        EXPECT_FALSE(eng.nextOutcome(b, rt));
        EXPECT_TRUE(eng.nextOutcome(b, rt));
        EXPECT_TRUE(eng.nextOutcome(b, rt));
        EXPECT_FALSE(eng.nextOutcome(b, rt));
    }
}

TEST(BranchBehavior, GlobalCorrelatedIsHistoryParity)
{
    BranchOutcomeEngine eng(3);
    BranchBehavior corr = noiseless(BranchKind::GlobalCorrelated);
    corr.historyMask = 0b101;
    BranchBehavior rnd = noiseless(BranchKind::Random);
    BranchRuntime rt_corr, rt_rnd;

    for (int i = 0; i < 500; ++i) {
        // Random branches churn the history...
        eng.nextOutcome(rnd, rt_rnd);
        // ...and the correlated branch must equal the parity of the
        // masked history bits at prediction time.
        std::uint64_t hist = eng.globalHistory();
        bool expect = std::popcount(hist & corr.historyMask) & 1;
        EXPECT_EQ(eng.nextOutcome(corr, rt_corr), expect);
    }
}

TEST(BranchBehavior, RandomIsBalanced)
{
    BranchOutcomeEngine eng(4);
    BranchBehavior b = noiseless(BranchKind::Random);
    BranchRuntime rt;
    int taken = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        taken += eng.nextOutcome(b, rt);
    EXPECT_NEAR(taken / double(n), 0.5, 0.02);
}

TEST(BranchBehavior, NoiseFlipsOutcomes)
{
    BranchOutcomeEngine eng(5);
    BranchBehavior b;
    b.kind = BranchKind::Biased;
    b.biasTaken = 1.0;
    b.noise = 0.25;
    BranchRuntime rt;
    int not_taken = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        not_taken += !eng.nextOutcome(b, rt);
    EXPECT_NEAR(not_taken / double(n), 0.25, 0.02);
}

TEST(BranchBehavior, HistoryTracksOutcomes)
{
    BranchOutcomeEngine eng(6);
    BranchBehavior b = noiseless(BranchKind::Biased);
    b.biasTaken = 1.0;
    BranchRuntime rt;
    eng.nextOutcome(b, rt);
    eng.nextOutcome(b, rt);
    EXPECT_EQ(eng.globalHistory() & 0b11, 0b11u);
}

TEST(BranchBehavior, ResetRestoresDeterminism)
{
    BranchOutcomeEngine eng(7);
    BranchBehavior b = noiseless(BranchKind::Random);
    BranchRuntime rt;
    std::vector<bool> first;
    for (int i = 0; i < 50; ++i)
        first.push_back(eng.nextOutcome(b, rt));
    eng.reset(7);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(eng.nextOutcome(b, rt), first[i]);
}
