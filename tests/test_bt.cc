/**
 * @file
 * Unit tests for the binary-translation subsystem: interpreter,
 * translator, region cache, nucleus and the BtSystem facade.
 */

#include <gtest/gtest.h>

#include "bt/bt_system.hh"
#include "common/logging.hh"

using namespace powerchop;

namespace
{

/** Three-block loop program; block 1 contains SIMD. */
Program
loopProgram()
{
    Program p;
    BlockId a = p.addBlock(0x1000, {OpClass::IntAlu, OpClass::Load});
    BlockId b = p.addBlock(0x2000, {OpClass::SimdOp, OpClass::IntAlu});
    BlockId c = p.addBlock(0x3000, {OpClass::Store});
    p.setSuccessors(a, b, a);
    p.setSuccessors(b, c, a);
    p.setSuccessors(c, a, a);
    return p;
}

} // namespace

// --- interpreter -----------------------------------------------------------------

TEST(Interpreter, FiresAtThresholdExactlyOnce)
{
    Interpreter in(3);
    EXPECT_FALSE(in.recordExecution(0x1000));
    EXPECT_FALSE(in.recordExecution(0x1000));
    EXPECT_TRUE(in.recordExecution(0x1000));
    EXPECT_FALSE(in.recordExecution(0x1000));  // only on the crossing
    EXPECT_EQ(in.hotness(0x1000), 4u);
}

TEST(Interpreter, TracksPerRegion)
{
    Interpreter in(2);
    in.recordExecution(0x1000);
    in.recordExecution(0x2000);
    EXPECT_EQ(in.hotness(0x1000), 1u);
    EXPECT_EQ(in.hotness(0x2000), 1u);
    EXPECT_EQ(in.hotness(0x3000), 0u);
    EXPECT_EQ(in.interpretedRegions(), 2u);
}

TEST(Interpreter, ForgetResetsCount)
{
    Interpreter in(2);
    in.recordExecution(0x1000);
    in.forget(0x1000);
    EXPECT_EQ(in.hotness(0x1000), 0u);
}

TEST(Interpreter, RejectsZeroThreshold)
{
    EXPECT_THROW(Interpreter(0), FatalError);
}

// --- translator -------------------------------------------------------------------

TEST(Translator, SingleBlockTrace)
{
    Program p = loopProgram();
    Translator tr(p, TranslatorParams{1});
    auto t = tr.translate(0);
    EXPECT_EQ(t->headPc, 0x1000u);
    EXPECT_EQ(t->id, Translation::idFor(0x1000));
    EXPECT_EQ(t->blocks.size(), 1u);
    EXPECT_EQ(t->staticInsts, 3u);  // body 2 + terminator
    EXPECT_FALSE(t->hasSimd);
}

TEST(Translator, MultiBlockTraceFollowsTakenChain)
{
    Program p = loopProgram();
    Translator tr(p, TranslatorParams{3});
    auto t = tr.translate(0);
    // a -> b -> c; c's taken successor is a (the head), so stop.
    EXPECT_EQ(t->blocks.size(), 3u);
    EXPECT_TRUE(t->hasSimd);  // block b has SIMD
}

TEST(Translator, TraceStopsAtLoopBack)
{
    Program p = loopProgram();
    Translator tr(p, TranslatorParams{10});
    auto t = tr.translate(1);  // b -> c -> a -> (b == head) stop
    EXPECT_EQ(t->blocks.size(), 3u);
}

TEST(Translator, IdIsLow32BitsOfHead)
{
    EXPECT_EQ(Translation::idFor(0x1234'5678'9abc'def0ull), 0x9abcdef0u);
}

TEST(Translator, RejectsZeroTraceLength)
{
    Program p = loopProgram();
    EXPECT_THROW(Translator(p, TranslatorParams{0}), FatalError);
}

// --- region cache ------------------------------------------------------------------

TEST(RegionCache, InsertThenLookup)
{
    RegionCache rc;
    auto t = std::make_unique<Translation>();
    t->headPc = 0x1000;
    t->id = Translation::idFor(0x1000);
    Translation *resident = rc.insert(std::move(t));
    EXPECT_EQ(rc.lookup(0x1000), resident);
    EXPECT_EQ(rc.lookup(0x2000), nullptr);
    EXPECT_EQ(rc.lookups(), 2u);
    EXPECT_EQ(rc.hits(), 1u);
}

TEST(RegionCache, CapacityFlush)
{
    RegionCache rc(2);
    for (Addr head : {0x1000u, 0x2000u, 0x3000u}) {
        auto t = std::make_unique<Translation>();
        t->headPc = head;
        rc.insert(std::move(t));
    }
    EXPECT_EQ(rc.flushes(), 1u);
    EXPECT_EQ(rc.size(), 1u);  // only the post-flush insert remains
    EXPECT_EQ(rc.lookup(0x1000), nullptr);
}

TEST(RegionCache, RejectsDuplicates)
{
    RegionCache rc;
    auto mk = [] {
        auto t = std::make_unique<Translation>();
        t->headPc = 0x1000;
        return t;
    };
    rc.insert(mk());
    EXPECT_THROW(rc.insert(mk()), PanicError);
    EXPECT_THROW(rc.insert(nullptr), PanicError);
}

// --- nucleus ------------------------------------------------------------------------

TEST(Nucleus, ChargesPerInterruptKind)
{
    NucleusParams p;
    p.pvtMissTrapCycles = 100;
    p.translationTrapCycles = 50;
    Nucleus n(p);
    EXPECT_DOUBLE_EQ(n.takeInterrupt(InterruptKind::PvtMiss), 100);
    EXPECT_DOUBLE_EQ(n.takeInterrupt(InterruptKind::Translation), 50);
    n.takeInterrupt(InterruptKind::PvtMiss);
    EXPECT_EQ(n.count(InterruptKind::PvtMiss), 2u);
    EXPECT_EQ(n.count(InterruptKind::Translation), 1u);
    EXPECT_DOUBLE_EQ(n.totalCycles(), 250);
}

// --- bt system -----------------------------------------------------------------------

TEST(BtSystem, InterpretsUntilHotThenTranslates)
{
    Program p = loopProgram();
    BtParams params;
    params.hotThreshold = 3;
    params.translationCost = 1000;
    BtSystem bt(p, params);

    for (int i = 0; i < 2; ++i) {
        RegionEntry e = bt.enterRegion(0);
        EXPECT_EQ(e.mode, ExecMode::Interpreted);
        EXPECT_DOUBLE_EQ(e.extraCycles, 0);
    }
    // Third entry crosses the threshold: still interpreted, but the
    // translator runs (trap + translation cost charged).
    RegionEntry hot = bt.enterRegion(0);
    EXPECT_EQ(hot.mode, ExecMode::Interpreted);
    EXPECT_GT(hot.extraCycles, params.translationCost - 1);

    RegionEntry fast = bt.enterRegion(0);
    EXPECT_EQ(fast.mode, ExecMode::Translated);
    ASSERT_NE(fast.translation, nullptr);
    EXPECT_EQ(fast.translation->headPc, 0x1000u);
    EXPECT_EQ(fast.translation->execCount, 1u);
    EXPECT_DOUBLE_EQ(fast.extraCycles, 0);
}

TEST(BtSystem, RegionsTrackedIndependently)
{
    Program p = loopProgram();
    BtParams params;
    params.hotThreshold = 2;
    BtSystem bt(p, params);
    bt.enterRegion(0);
    bt.enterRegion(1);
    bt.enterRegion(0);  // region 0 hot now
    bt.enterRegion(1);  // region 1 hot now
    EXPECT_EQ(bt.enterRegion(0).mode, ExecMode::Translated);
    EXPECT_EQ(bt.enterRegion(1).mode, ExecMode::Translated);
    EXPECT_EQ(bt.regionCache().size(), 2u);
}
