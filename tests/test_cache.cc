/**
 * @file
 * Unit tests for the way-gateable set-associative cache and the
 * memory hierarchy with its shadow tag array.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "uarch/cache.hh"
#include "uarch/mem_hierarchy.hh"

using namespace powerchop;

namespace
{

CacheParams
smallCache()
{
    return CacheParams{8 * 1024, 4, 64};  // 32 sets x 4 ways
}

} // namespace

TEST(Cache, GeometryValidation)
{
    EXPECT_THROW(SetAssocCache(CacheParams{1024, 4, 60}), FatalError);
    EXPECT_THROW(SetAssocCache(CacheParams{1024, 0, 64}), FatalError);
    EXPECT_THROW(SetAssocCache(CacheParams{1024, 3, 64}), FatalError);
}

TEST(Cache, MissThenHit)
{
    SetAssocCache c(smallCache());
    EXPECT_FALSE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x103f, false).hit);   // same line
    EXPECT_FALSE(c.access(0x1040, false).hit);  // next line
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, LruEvictionOrder)
{
    SetAssocCache c(smallCache());
    const Addr set_stride = 32 * 64;  // same set
    for (Addr i = 0; i < 4; ++i)
        c.access(0x10000 + i * set_stride, false);
    // Touch line 0 so line 1 is LRU.
    c.access(0x10000, false);
    c.access(0x10000 + 4 * set_stride, false);  // evicts line 1
    EXPECT_TRUE(c.access(0x10000, false).hit);
    EXPECT_FALSE(c.access(0x10000 + 1 * set_stride, false).hit);
}

TEST(Cache, DirtyEvictionCountsWriteback)
{
    SetAssocCache c(smallCache());
    const Addr set_stride = 32 * 64;
    c.access(0x10000, true);  // dirty line
    for (Addr i = 1; i <= 4; ++i)
        c.access(0x10000 + i * set_stride, false);
    EXPECT_EQ(c.writebacks(), 1u);
}

TEST(Cache, CleanEvictionNoWriteback)
{
    SetAssocCache c(smallCache());
    const Addr set_stride = 32 * 64;
    for (Addr i = 0; i <= 4; ++i)
        c.access(0x10000 + i * set_stride, false);
    EXPECT_EQ(c.writebacks(), 0u);
}

TEST(Cache, WayGatingDropsLinesAndWritesBackDirty)
{
    SetAssocCache c(smallCache());
    const Addr set_stride = 32 * 64;
    // Fill all four ways of one set; two dirty.
    c.access(0x10000 + 0 * set_stride, true);
    c.access(0x10000 + 1 * set_stride, true);
    c.access(0x10000 + 2 * set_stride, false);
    c.access(0x10000 + 3 * set_stride, false);
    EXPECT_EQ(c.validLineCount(), 4u);

    std::uint64_t wb = c.setActiveWays(1);
    // Lines in ways 1-3 were dropped; dirty ones written back. LRU
    // fill order means way 0 holds the first access.
    EXPECT_EQ(c.activeWays(), 1u);
    EXPECT_EQ(c.validLineCount(), 1u);
    EXPECT_EQ(wb, 1u);  // the dirty line in way 1
    EXPECT_TRUE(c.access(0x10000, false).hit);
}

TEST(Cache, WayUpgradeStartsEmpty)
{
    SetAssocCache c(smallCache());
    c.setActiveWays(1);
    c.access(0x1000, false);
    c.setActiveWays(4);
    EXPECT_EQ(c.activeWays(), 4u);
    // The way-0 line survives the upgrade.
    EXPECT_TRUE(c.access(0x1000, false).hit);
    // Upgrading adds capacity: four distinct same-set lines now fit.
    const Addr set_stride = 32 * 64;
    for (Addr i = 0; i < 4; ++i)
        c.access(0x40000 + i * set_stride, false);
    for (Addr i = 0; i < 4; ++i)
        EXPECT_TRUE(c.access(0x40000 + i * set_stride, false).hit);
}

TEST(Cache, ReducedWaysReduceCapacity)
{
    SetAssocCache c(smallCache());
    c.setActiveWays(1);
    const Addr set_stride = 32 * 64;
    c.access(0x10000, false);
    c.access(0x10000 + set_stride, false);  // evicts previous
    EXPECT_FALSE(c.access(0x10000, false).hit);
}

TEST(Cache, SetActiveWaysValidation)
{
    SetAssocCache c(smallCache());
    EXPECT_THROW(c.setActiveWays(0), FatalError);
    EXPECT_THROW(c.setActiveWays(5), FatalError);
}

TEST(Cache, InvalidateAllCountsDirty)
{
    SetAssocCache c(smallCache());
    c.access(0x1000, true);
    c.access(0x2000, false);
    EXPECT_EQ(c.invalidateAll(), 1u);
    EXPECT_EQ(c.validLineCount(), 0u);
}

TEST(Cache, WindowStats)
{
    SetAssocCache c(smallCache());
    c.access(0x1000, false);
    c.access(0x1000, false);
    EXPECT_EQ(c.windowAccesses(), 2u);
    EXPECT_EQ(c.windowHits(), 1u);
    c.resetWindowStats();
    EXPECT_EQ(c.windowAccesses(), 0u);
    EXPECT_EQ(c.hits(), 1u);  // lifetime survives
}

TEST(Cache, HitRate)
{
    SetAssocCache c(smallCache());
    c.access(0x1000, false);
    c.access(0x1000, false);
    c.access(0x1000, false);
    c.access(0x2000, false);
    EXPECT_DOUBLE_EQ(c.hitRate(), 0.5);
}

// --- memory hierarchy ----------------------------------------------------------

TEST(MemHierarchy, L1FiltersMlc)
{
    MemHierarchy mem(CacheParams{1024, 2, 64}, CacheParams{8192, 4, 64});
    EXPECT_EQ(mem.access(0x1000, false).level, MemLevel::Memory);
    EXPECT_EQ(mem.access(0x1000, false).level, MemLevel::L1);
    EXPECT_EQ(mem.mlc().accesses(), 1u);
}

TEST(MemHierarchy, MlcCatchesL1Evictions)
{
    MemHierarchy mem(CacheParams{512, 1, 64}, CacheParams{8192, 4, 64});
    // Two addresses conflicting in the tiny 1-way L1 but coexisting
    // in the MLC.
    const Addr a = 0x10000, b = 0x10000 + 512;
    mem.access(a, false);
    mem.access(b, false);  // evicts a from L1
    EXPECT_EQ(mem.access(a, false).level, MemLevel::Mlc);
}

TEST(MemHierarchy, ShadowTracksFullConfigWhenGated)
{
    MemHierarchy mem(CacheParams{512, 1, 64}, CacheParams{8192, 4, 64});
    mem.setMlcActiveWays(1);

    // Four same-set MLC lines: the 1-way MLC thrashes, the shadow (4
    // ways) holds them all.
    const Addr set_stride = (8192 / 4 / 64) * 64;
    auto touch_all = [&](int reps) {
        for (int r = 0; r < reps; ++r) {
            for (Addr i = 0; i < 4; ++i) {
                mem.access(0x20000 + i * set_stride, false);
                // Flush the L1 in between so every access reaches the
                // MLC level.
                mem.access(0x20000 + i * set_stride + 512, false);
            }
        }
    };
    touch_all(4);
    mem.resetWindowStats();
    touch_all(4);
    EXPECT_GT(mem.mlcWindowHits(), mem.mlc().windowHits());
}

TEST(MemHierarchy, SetMlcActiveWaysReturnsDirtyCount)
{
    MemHierarchy mem(CacheParams{512, 1, 64}, CacheParams{8192, 4, 64});
    const Addr set_stride = (8192 / 4 / 64) * 64;
    for (Addr i = 0; i < 4; ++i)
        mem.access(0x20000 + i * set_stride, true);
    std::uint64_t wb = mem.setMlcActiveWays(1);
    EXPECT_GE(wb, 2u);  // at least the dropped dirty lines
}
