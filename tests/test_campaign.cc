/**
 * @file
 * Tests for the durability layer: crash-safe atomic file writes, the
 * write-ahead result journal (torn/corrupt/duplicate recovery), job
 * content keys, deterministic retry backoff, the logging flush-hook
 * registry, and campaign run/interrupt/resume with bit-identical
 * merged reports.
 */

#include <csignal>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <gtest/gtest.h>

#include <unistd.h>

#include "common/atomic_file.hh"
#include "common/journal.hh"
#include "common/logging.hh"
#include "sim/campaign.hh"
#include "sim/sim_runner.hh"
#include "workload/suites.hh"

using namespace powerchop;

namespace
{

std::string
freshDir(const std::string &name)
{
    const std::string dir = testing::TempDir() + "powerchop_campaign_" +
        std::to_string(::getpid()) + "_" + name;
    std::filesystem::remove_all(dir);
    return dir;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

void
writeRaw(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << path;
    out << content;
}

WorkloadSpec
smallWorkload(unsigned seed)
{
    WorkloadSpec w;
    w.name = "small-" + std::to_string(seed);
    w.seed = seed;
    PhaseSpec compute;
    compute.name = "compute";
    compute.simdFrac = 0.05;
    PhaseSpec memory;
    memory.name = "memory";
    memory.memFrac = 0.32;
    memory.mem.workingSetBytes = 256 * 1024;
    memory.mem.hotRegionFrac = 0.8;
    memory.mem.randomFrac = 0.5;
    w.phases = {compute, memory};
    w.schedule = {{0, 60'000}, {1, 90'000}};
    return w;
}

SimJob
smallJob(unsigned seed, SimMode mode = SimMode::PowerChop)
{
    SimJob job;
    job.workload = smallWorkload(seed);
    job.machine = serverConfig();
    job.opts.mode = mode;
    job.opts.maxInstructions = 30'000;
    return job;
}

std::vector<SimJob>
smallMatrix(std::size_t n)
{
    std::vector<SimJob> jobs;
    for (std::size_t i = 0; i < n; ++i)
        jobs.push_back(smallJob(static_cast<unsigned>(i + 1)));
    return jobs;
}

// ---------------------------------------------------------------------
// Atomic file replacement
// ---------------------------------------------------------------------

TEST(AtomicFile, WriteReadBackAndReplace)
{
    const std::string dir = freshDir("atomic");
    std::filesystem::create_directories(dir);
    const std::string path = dir + "/out.txt";

    atomicWriteFile(path, "first\n");
    EXPECT_EQ(readFile(path), "first\n");

    atomicWriteFile(path, "second version\n");
    EXPECT_EQ(readFile(path), "second version\n");

    // No temp droppings survive a successful replace.
    for (const auto &e : std::filesystem::directory_iterator(dir))
        EXPECT_EQ(e.path().filename().string(), "out.txt");
}

TEST(AtomicFile, ErrorsAreTypedOrReported)
{
    const std::string bad = freshDir("missing") + "/nodir/out.txt";
    EXPECT_THROW(atomicWriteFile(bad, "x"), IoError);
    EXPECT_FALSE(atomicWriteFileOk(bad, "x"));
}

// ---------------------------------------------------------------------
// Journal format
// ---------------------------------------------------------------------

TEST(Journal, Crc32MatchesKnownVectors)
{
    // The classic CRC-32 (IEEE 802.3) check value.
    EXPECT_EQ(journalCrc32("123456789"), 0xcbf43926u);
    EXPECT_EQ(journalCrc32(""), 0u);
}

TEST(Journal, LineRoundTripsAndRejectsTampering)
{
    JournalRecord rec;
    rec.key = 0x0123456789abcdefull;
    rec.status = "ok";
    rec.payload = "{\"cycles\":123}";
    const std::string line = formatJournalLine(rec);

    JournalRecord parsed;
    ASSERT_TRUE(parseJournalLine(line, parsed));
    EXPECT_EQ(parsed.key, rec.key);
    EXPECT_EQ(parsed.status, "ok");
    EXPECT_EQ(parsed.payload, rec.payload);

    // Any flipped payload byte fails the checksum.
    std::string tampered = line;
    tampered[line.size() - 3] ^= 0x01;
    EXPECT_FALSE(parseJournalLine(tampered, parsed));

    // A torn prefix is rejected too.
    EXPECT_FALSE(parseJournalLine(line.substr(0, line.size() / 2),
                                  parsed));
}

TEST(Journal, OpenFailureIsIoErrorNotEmptyReplay)
{
    // A journal that cannot be opened must fail loudly: --resume
    // pointed at a wrong directory would otherwise silently rerun
    // the whole campaign.
    EXPECT_THROW(
        loadJournal(freshDir("nojournal") + "/journal.jsonl"),
        IoError);
}

TEST(Journal, LoadIfPresentTreatsOnlyMissingAsEmpty)
{
    // Missing file: the explicit "fresh campaign" entry point.
    const JournalReplay replay = loadJournalIfPresent(
        freshDir("nojournal2") + "/journal.jsonl");
    EXPECT_TRUE(replay.records.empty());
    EXPECT_EQ(replay.lines, 0u);
    EXPECT_EQ(replay.corrupted, 0u);
    EXPECT_EQ(replay.truncated, 0u);

    // Any other open failure still throws: a directory in place of
    // the journal is not a fresh campaign.
    const std::string dir = freshDir("nojournal3");
    std::filesystem::create_directories(dir + "/journal.jsonl");
    EXPECT_THROW(loadJournalIfPresent(dir + "/journal.jsonl"),
                 IoError);
}

TEST(Journal, WriterAppendsDurablyAndLoadsInOrder)
{
    const std::string dir = freshDir("writer");
    std::filesystem::create_directories(dir);
    const std::string path = dir + "/journal.jsonl";
    {
        JournalWriter writer(path);
        for (std::uint64_t k = 1; k <= 3; ++k)
            writer.append({k, "ok", csprintf("{\"v\":%llu}",
                                             (unsigned long long)k)});
        EXPECT_EQ(writer.appended(), 3u);
    }
    const JournalReplay replay = loadJournal(path);
    EXPECT_EQ(replay.lines, 3u);
    ASSERT_EQ(replay.records.size(), 3u);
    for (std::uint64_t k = 1; k <= 3; ++k)
        EXPECT_EQ(replay.records[k - 1].key, k);
}

TEST(Journal, CorruptedInteriorLineIsSkippedWithWarning)
{
    const std::string dir = freshDir("corrupt");
    std::filesystem::create_directories(dir);
    const std::string path = dir + "/journal.jsonl";
    {
        JournalWriter writer(path);
        writer.append({1, "ok", "{\"v\":1}"});
        writer.append({2, "ok", "{\"v\":2}"});
        writer.append({3, "ok", "{\"v\":3}"});
    }
    // Flip one byte inside the middle line's payload.
    std::string text = readFile(path);
    const std::size_t first_nl = text.find('\n');
    const std::size_t second_nl = text.find('\n', first_nl + 1);
    text[second_nl - 3] ^= 0x01;
    writeRaw(path, text);

    const JournalReplay replay = loadJournal(path);
    EXPECT_EQ(replay.corrupted, 1u);
    ASSERT_EQ(replay.records.size(), 2u);
    EXPECT_NE(replay.find(1), JournalReplay::npos);
    EXPECT_EQ(replay.find(2), JournalReplay::npos);
    EXPECT_NE(replay.find(3), JournalReplay::npos);
}

TEST(Journal, TruncatedFinalLineIsRecoveredSilently)
{
    const std::string dir = freshDir("torn");
    std::filesystem::create_directories(dir);
    const std::string path = dir + "/journal.jsonl";
    {
        JournalWriter writer(path);
        writer.append({1, "ok", "{\"v\":1}"});
        writer.append({2, "ok", "{\"v\":2}"});
    }
    // Simulate a SIGKILL mid-append: half a record, no newline.
    const std::string full = readFile(path);
    const std::string torn =
        formatJournalLine({3, "ok", "{\"v\":3}"});
    writeRaw(path, full + torn.substr(0, torn.size() / 2));

    const JournalReplay replay = loadJournal(path);
    EXPECT_EQ(replay.truncated, 1u);
    EXPECT_EQ(replay.corrupted, 0u);
    ASSERT_EQ(replay.records.size(), 2u);
    EXPECT_EQ(replay.find(3), JournalReplay::npos);
}

TEST(Journal, DuplicateKeysResolveLastWriteWins)
{
    const std::string dir = freshDir("dup");
    std::filesystem::create_directories(dir);
    const std::string path = dir + "/journal.jsonl";
    {
        JournalWriter writer(path);
        writer.append({7, "failed", "{\"error\":\"transient\"}"});
        writer.append({8, "ok", "{\"v\":8}"});
        writer.append({7, "ok", "{\"v\":7}"});
    }
    const JournalReplay replay = loadJournal(path);
    EXPECT_EQ(replay.duplicates, 1u);
    ASSERT_EQ(replay.records.size(), 2u);
    const std::size_t at = replay.find(7);
    ASSERT_NE(at, JournalReplay::npos);
    EXPECT_EQ(replay.records[at].status, "ok");
    EXPECT_EQ(replay.records[at].payload, "{\"v\":7}");
}

// ---------------------------------------------------------------------
// Deterministic retry backoff
// ---------------------------------------------------------------------

TEST(Backoff, FirstAttemptIsFree)
{
    RobustRunOptions opts;
    EXPECT_EQ(retryBackoffSeconds(opts, 0, 1), 0.0);
    EXPECT_EQ(retryBackoffSeconds(opts, 99, 1), 0.0);
}

TEST(Backoff, DeterministicBoundedAndDoubling)
{
    RobustRunOptions opts;
    opts.backoffBaseSeconds = 0.010;
    opts.backoffMaxSeconds = 0.080;
    opts.backoffJitterFraction = 0.25;
    opts.backoffSeed = 42;

    for (unsigned attempt = 2; attempt <= 8; ++attempt) {
        const double a = retryBackoffSeconds(opts, 3, attempt);
        const double b = retryBackoffSeconds(opts, 3, attempt);
        EXPECT_EQ(a, b) << "wall-clock randomness leaked in";
        const double exp_base = std::min(
            opts.backoffMaxSeconds,
            opts.backoffBaseSeconds * (1u << (attempt - 2)));
        EXPECT_GE(a, exp_base);
        EXPECT_LT(a, exp_base * (1 + opts.backoffJitterFraction));
    }

    // Different job index / seed draws different jitter.
    EXPECT_NE(retryBackoffSeconds(opts, 3, 4),
              retryBackoffSeconds(opts, 4, 4));
    RobustRunOptions other = opts;
    other.backoffSeed = 43;
    EXPECT_NE(retryBackoffSeconds(opts, 3, 4),
              retryBackoffSeconds(other, 3, 4));
}

TEST(Backoff, ZeroBaseDisablesWaiting)
{
    RobustRunOptions opts;
    opts.backoffBaseSeconds = 0;
    for (unsigned attempt = 2; attempt <= 5; ++attempt)
        EXPECT_EQ(retryBackoffSeconds(opts, 0, attempt), 0.0);
}

TEST(Backoff, RecordedInOutcomesAndReport)
{
    // A job that always fails validation, flagged transient so it
    // retries: attempts and deterministic backoff must be reported.
    SimJob bad = smallJob(1);
    bad.machine.vpu.width = 0; // validate() rejects this
    bad.transient = true;

    SimJobRunner runner(2);
    RobustRunOptions opts;
    opts.maxRetries = 2;
    opts.backoffBaseSeconds = 1e-4;
    opts.backoffMaxSeconds = 1e-3;
    const RobustBatchResult batch = runner.runRobust({bad}, opts);

    ASSERT_EQ(batch.outcomes.size(), 1u);
    EXPECT_EQ(batch.outcomes[0].status, JobStatus::Failed);
    EXPECT_EQ(batch.outcomes[0].attempts, 3u);
    const double expected = retryBackoffSeconds(opts, 0, 2) +
                            retryBackoffSeconds(opts, 0, 3);
    EXPECT_DOUBLE_EQ(batch.outcomes[0].backoffSeconds, expected);
    EXPECT_EQ(runner.report().retries, 2u);
    EXPECT_DOUBLE_EQ(runner.report().backoffSeconds, expected);
}

// ---------------------------------------------------------------------
// Flush hooks: exit-path hygiene
// ---------------------------------------------------------------------

TEST(FlushHooks, ArmedHookRunsExactlyOncePerArm)
{
    int runs = 0;
    const int id = registerFlushHook("test-hook", [&] { ++runs; });

    // Not armed: nothing to drain.
    EXPECT_EQ(drainFlushHooks(), 0u);
    EXPECT_EQ(runs, 0);

    armFlushHook(id);
    EXPECT_EQ(drainFlushHooks(), 1u);
    EXPECT_EQ(runs, 1);
    EXPECT_EQ(drainFlushHooks(), 0u) << "hook must disarm after draining";
    EXPECT_EQ(runs, 1);

    // fatal() drains armed hooks before throwing...
    armFlushHook(id);
    EXPECT_THROW(fatal("flush-hook test fatal"), FatalError);
    EXPECT_EQ(runs, 2);
    // ...and a second fatal cannot double-flush a disarmed hook.
    EXPECT_THROW(fatal("flush-hook test fatal 2"), FatalError);
    EXPECT_EQ(runs, 2);

    unregisterFlushHook(id);
    armFlushHook(id); // stale id: ignored
    EXPECT_EQ(drainFlushHooks(), 0u);
    EXPECT_EQ(runs, 2);
}

// ---------------------------------------------------------------------
// Campaign content keys
// ---------------------------------------------------------------------

TEST(CampaignKey, StableForIdenticalJobsSensitiveToEveryKnob)
{
    const SimJob base = smallJob(1);
    const std::uint64_t key = campaignJobKey(base);
    EXPECT_EQ(campaignJobKey(smallJob(1)), key);

    SimJob machine_changed = base;
    machine_changed.machine.vpu.width = 2;
    EXPECT_NE(campaignJobKey(machine_changed), key);

    SimJob policy_changed = base;
    policy_changed.machine.powerChop.htb.windowSize *= 2;
    EXPECT_NE(campaignJobKey(policy_changed), key);

    SimJob budget_changed = base;
    budget_changed.opts.maxInstructions += 1;
    EXPECT_NE(campaignJobKey(budget_changed), key);

    SimJob mode_changed = base;
    mode_changed.opts.mode = SimMode::MinPower;
    EXPECT_NE(campaignJobKey(mode_changed), key);

    SimJob workload_changed = base;
    workload_changed.workload.seed += 1;
    EXPECT_NE(campaignJobKey(workload_changed), key);

    // Telemetry shapes observability, never results: same key.
    SimJob telemetry_changed = base;
    telemetry_changed.machine.telemetry.maxEvents += 1000;
    EXPECT_EQ(campaignJobKey(telemetry_changed), key);
}

// ---------------------------------------------------------------------
// Campaign run / resume / recovery
// ---------------------------------------------------------------------

TEST(Campaign, RunThenResumeReplaysEverythingBitIdentically)
{
    const std::string dir = freshDir("resume");
    const std::vector<SimJob> jobs = smallMatrix(3);
    SimJobRunner runner(2);

    const CampaignResult first = runCampaign(runner, jobs, dir, {});
    EXPECT_TRUE(first.complete());
    EXPECT_FALSE(first.interrupted);
    EXPECT_EQ(first.executed, 3u);
    EXPECT_EQ(first.replayed, 0u);
    const std::string report = readFile(dir + "/report.json");

    CampaignOptions resume;
    resume.resume = true;
    const CampaignResult second =
        runCampaign(runner, jobs, dir, resume);
    EXPECT_TRUE(second.complete());
    EXPECT_EQ(second.executed, 0u) << "--resume must skip journaled jobs";
    EXPECT_EQ(second.replayed, 3u);
    EXPECT_EQ(readFile(dir + "/report.json"), report);
}

TEST(Campaign, DirtyDirectoryRefusedWithoutResume)
{
    const std::string dir = freshDir("dirty");
    const std::vector<SimJob> jobs = smallMatrix(1);
    SimJobRunner runner(1);
    runCampaign(runner, jobs, dir, {});
    EXPECT_THROW(runCampaign(runner, jobs, dir, {}), FatalError);
}

TEST(Campaign, ResumeWithoutJournalRefused)
{
    // --resume against a directory with no journal means the user
    // pointed at the wrong place; rerunning everything silently
    // would mask the mistake.
    const std::string dir = freshDir("resume-nothing");
    const std::vector<SimJob> jobs = smallMatrix(1);
    SimJobRunner runner(1);
    CampaignOptions resume;
    resume.resume = true;
    EXPECT_THROW(runCampaign(runner, jobs, dir, resume), FatalError);
}

TEST(Campaign, DuplicateJobsRefused)
{
    const std::string dir = freshDir("dupjobs");
    std::vector<SimJob> jobs = {smallJob(1), smallJob(1)};
    SimJobRunner runner(1);
    EXPECT_THROW(runCampaign(runner, jobs, dir, {}), FatalError);
}

TEST(Campaign, ChangedMachineConfigRejectsStaleRecords)
{
    const std::string dir = freshDir("stale");
    std::vector<SimJob> jobs = smallMatrix(2);
    SimJobRunner runner(2);
    runCampaign(runner, jobs, dir, {});

    // Every machine knob changed => every journal record is stale and
    // every job reruns; nothing silently reuses the old results.
    for (auto &job : jobs)
        job.machine.vpu.width = 2;
    CampaignOptions resume;
    resume.resume = true;
    const CampaignResult res = runCampaign(runner, jobs, dir, resume);
    EXPECT_EQ(res.staleRecords, 2u);
    EXPECT_EQ(res.replayed, 0u);
    EXPECT_EQ(res.executed, 2u);
    EXPECT_TRUE(res.complete());
}

TEST(Campaign, CorruptedJournalLineRerunsOnlyThatJob)
{
    const std::string dir = freshDir("rerun");
    const std::vector<SimJob> jobs = smallMatrix(3);
    SimJobRunner runner(2);
    runCampaign(runner, jobs, dir, {});
    const std::string report = readFile(dir + "/report.json");

    // Corrupt the middle journal record on disk.
    const std::string jpath = dir + "/journal.jsonl";
    std::string text = readFile(jpath);
    const std::size_t first_nl = text.find('\n');
    const std::size_t second_nl = text.find('\n', first_nl + 1);
    text[second_nl - 3] ^= 0x01;
    writeRaw(jpath, text);

    CampaignOptions resume;
    resume.resume = true;
    const CampaignResult res = runCampaign(runner, jobs, dir, resume);
    EXPECT_EQ(res.corruptedRecords, 1u);
    EXPECT_EQ(res.replayed, 2u);
    EXPECT_EQ(res.executed, 1u);
    EXPECT_TRUE(res.complete());
    EXPECT_EQ(readFile(dir + "/report.json"), report)
        << "rerun of a corrupted record must converge to the same "
           "bytes (simulate() is deterministic)";
}

TEST(Campaign, InterruptSkipsRemainderAndResumeIsBitIdentical)
{
    const std::vector<SimJob> jobs = smallMatrix(4);

    // Reference: the same matrix run uninterrupted.
    const std::string ref_dir = freshDir("int_ref");
    SimJobRunner ref_runner(1);
    runCampaign(ref_runner, jobs, ref_dir, {});
    const std::string ref_report = readFile(ref_dir + "/report.json");

    // Interrupted run: one worker, flag rises after the first job
    // completes, so later jobs are skipped (resumable).
    const std::string dir = freshDir("int");
    std::atomic<bool> flag{false};
    SimJobRunner runner(1);
    CampaignOptions opts;
    opts.interruptFlag = &flag;
    opts.onProgress = [&](std::size_t done, std::size_t) {
        if (done >= 1)
            flag.store(true);
    };
    const CampaignResult res = runCampaign(runner, jobs, dir, opts);
    EXPECT_TRUE(res.interrupted);
    EXPECT_FALSE(res.complete());
    std::size_t resumable = 0;
    for (const auto &o : res.outcomes) {
        resumable += o.status == JobStatus::Skipped ||
                     o.status == JobStatus::Interrupted;
    }
    EXPECT_GT(resumable, 0u);

    // Resume with the flag lowered: completes and the merged report
    // is byte-identical to the uninterrupted reference.
    flag.store(false);
    CampaignOptions resume;
    resume.resume = true;
    resume.interruptFlag = &flag;
    const CampaignResult done = runCampaign(runner, jobs, dir, resume);
    EXPECT_TRUE(done.complete());
    EXPECT_FALSE(done.interrupted);
    EXPECT_GT(done.replayed, 0u);
    EXPECT_EQ(readFile(dir + "/report.json"), ref_report);
}

TEST(Campaign, PreRaisedFlagSkipsEveryJob)
{
    const std::string dir = freshDir("preflag");
    const std::vector<SimJob> jobs = smallMatrix(2);
    std::atomic<bool> flag{true};
    SimJobRunner runner(2);
    CampaignOptions opts;
    opts.interruptFlag = &flag;
    const CampaignResult res = runCampaign(runner, jobs, dir, opts);
    EXPECT_TRUE(res.interrupted);
    EXPECT_FALSE(res.complete());
    for (const auto &o : res.outcomes)
        EXPECT_EQ(o.status, JobStatus::Skipped);

    flag.store(false);
    CampaignOptions resume;
    resume.resume = true;
    resume.interruptFlag = &flag;
    EXPECT_TRUE(runCampaign(runner, jobs, dir, resume).complete());
}

TEST(Campaign, SignalHandlerRaisesInterruptFlag)
{
    installCampaignSignalHandlers();
    campaignInterruptFlag().store(false);
    ASSERT_EQ(std::raise(SIGTERM), 0);
    EXPECT_TRUE(campaignInterruptFlag().load())
        << "SIGTERM must request a graceful drain, not kill us";
    campaignInterruptFlag().store(false);
}

} // namespace
