/**
 * @file
 * Unit tests for the Criticality Decision Engine, the gating
 * controller, the timeout baseline and the PowerChop orchestrator.
 */

#include <gtest/gtest.h>

#include "bt/nucleus.hh"
#include "common/logging.hh"
#include "core/cde.hh"
#include "core/gating_controller.hh"
#include "core/powerchop_unit.hh"
#include "core/timeout_gater.hh"
#include "sim/machine_config.hh"

using namespace powerchop;

namespace
{

PhaseSignature
sig(TranslationId base)
{
    TranslationId ids[] = {base, base + 1, base + 2, base + 3};
    return PhaseSignature(ids, 4);
}

WindowProfile
profile(std::uint64_t insns, std::uint64_t simd, std::uint64_t l2hits,
        double mp_large, double mp_small)
{
    WindowProfile wp;
    wp.totalInsns = insns;
    wp.simdInsns = simd;
    wp.l2Hits = l2hits;
    wp.mispredLarge = mp_large;
    wp.mispredSmall = mp_small;
    return wp;
}

} // namespace

// --- CDE scoring ------------------------------------------------------------------

TEST(Cde, VpuScoring)
{
    Cde cde;
    const auto &p = cde.params();
    EXPECT_TRUE(cde.scoreCriticality(p.thresholdVpu * 2, 0, 1).vpuOn);
    EXPECT_FALSE(cde.scoreCriticality(p.thresholdVpu / 2, 0, 1).vpuOn);
    EXPECT_FALSE(cde.scoreCriticality(p.thresholdVpu, 0, 1).vpuOn);
}

TEST(Cde, BpuScoring)
{
    Cde cde;
    const auto &p = cde.params();
    EXPECT_TRUE(cde.scoreCriticality(0, p.thresholdBpu * 2, 1).bpuOn);
    EXPECT_FALSE(cde.scoreCriticality(0, p.thresholdBpu / 2, 1).bpuOn);
    EXPECT_FALSE(cde.scoreCriticality(0, -0.1, 1).bpuOn);
}

TEST(Cde, MlcThreeBands)
{
    Cde cde;
    const auto &p = cde.params();
    EXPECT_EQ(cde.scoreCriticality(0, 0, p.thresholdMlc1 * 2).mlc,
              MlcPolicy::AllWays);
    EXPECT_EQ(cde.scoreCriticality(
                      0, 0, (p.thresholdMlc1 + p.thresholdMlc2) / 2)
                  .mlc,
              MlcPolicy::HalfWays);
    EXPECT_EQ(cde.scoreCriticality(0, 0, p.thresholdMlc2 / 2).mlc,
              MlcPolicy::OneWay);
}

TEST(Cde, QuarterWaysExtensionOffByDefault)
{
    Cde cde;
    const auto &p = cde.params();
    double quarter_band = (p.thresholdMlc2 + p.thresholdMlcQuarter) / 2;
    EXPECT_EQ(cde.scoreCriticality(0, 0, quarter_band).mlc,
              MlcPolicy::HalfWays);
}

TEST(Cde, QuarterWaysExtensionBands)
{
    CdeParams params;
    params.enableQuarterWays = true;
    Cde cde(params);
    double quarter_band =
        (params.thresholdMlc2 + params.thresholdMlcQuarter) / 2;
    EXPECT_EQ(cde.scoreCriticality(0, 0, quarter_band).mlc,
              MlcPolicy::QuarterWays);
    // The other bands are unchanged.
    EXPECT_EQ(cde.scoreCriticality(0, 0, params.thresholdMlc1 * 2).mlc,
              MlcPolicy::AllWays);
    EXPECT_EQ(cde.scoreCriticality(0, 0, params.thresholdMlc2 / 2).mlc,
              MlcPolicy::OneWay);
    EXPECT_EQ(cde.scoreCriticality(
                      0, 0,
                      (params.thresholdMlcQuarter +
                       params.thresholdMlc1) / 2)
                  .mlc,
              MlcPolicy::HalfWays);
}

TEST(Cde, ManagedUnitMasks)
{
    Cde cde;
    cde.setManageVpu(false);
    cde.setManageMlc(false);
    GatingPolicy p = cde.scoreCriticality(0, 0, 0);
    EXPECT_TRUE(p.vpuOn);                    // unmanaged: stays on
    EXPECT_EQ(p.mlc, MlcPolicy::AllWays);    // unmanaged: all ways
    EXPECT_FALSE(p.bpuOn);                   // still managed
}

TEST(Cde, ScorePolicyUsesProfileRatios)
{
    Cde cde;
    // 5% SIMD, large predictor 10% better, heavy L2 hits.
    WindowProfile wp = profile(1000, 50, 100, 0.05, 0.15);
    GatingPolicy p = cde.scorePolicy(wp);
    EXPECT_TRUE(p.vpuOn);
    EXPECT_TRUE(p.bpuOn);
    EXPECT_EQ(p.mlc, MlcPolicy::AllWays);
}

TEST(Cde, EmptyWindowProfileScoresAllNonCritical)
{
    // A window with zero committed instructions (e.g. a fully stalled
    // window) must not divide by zero; every criticality reads 0 and
    // everything gates down.
    WindowProfile wp = profile(0, 0, 0, 0.0, 0.0);
    EXPECT_DOUBLE_EQ(wp.vpuCriticality(), 0.0);
    EXPECT_DOUBLE_EQ(wp.mlcCriticality(), 0.0);

    Cde cde;
    GatingPolicy p = cde.scorePolicy(wp);
    EXPECT_FALSE(p.vpuOn);
    EXPECT_FALSE(p.bpuOn);
    EXPECT_EQ(p.mlc, MlcPolicy::OneWay);
}

TEST(Cde, BranchFreeWindowGatesLargePredictor)
{
    // No branches in the window: both predictors report a 0.0
    // mispredict rate, the BPU criticality (small - large) is 0, and
    // the large predictor gates off.
    WindowProfile wp = profile(1000, 500, 100, 0.0, 0.0);
    Cde cde;
    GatingPolicy p = cde.scorePolicy(wp);
    EXPECT_FALSE(p.bpuOn);
    // The other units still score from their own counters.
    EXPECT_TRUE(p.vpuOn);
    EXPECT_EQ(p.mlc, MlcPolicy::AllWays);
}

TEST(Cde, AllSimdWindowKeepsVpuOn)
{
    // Saturated criticality: every instruction is SIMD.
    WindowProfile wp = profile(1000, 1000, 0, 0.05, 0.15);
    EXPECT_DOUBLE_EQ(wp.vpuCriticality(), 1.0);
    Cde cde;
    GatingPolicy p = cde.scorePolicy(wp);
    EXPECT_TRUE(p.vpuOn);
}

// --- CDE Algorithm 1 flow -----------------------------------------------------------

TEST(Cde, ProfilesForConfiguredWindowsThenRegisters)
{
    CdeParams params;
    params.profilingWindows = 3;
    Cde cde(params);
    Pvt pvt;
    WindowProfile wp = profile(1000, 500, 0, 0.1, 0.1);

    auto r1 = cde.onPvtMiss(sig(1), wp, pvt);
    EXPECT_TRUE(r1.keepCurrent);
    EXPECT_FALSE(r1.registered);
    EXPECT_EQ(cde.newPhases(), 1u);
    EXPECT_FALSE(pvt.contains(sig(1)));

    auto r2 = cde.onPvtMiss(sig(1), wp, pvt);
    EXPECT_TRUE(r2.keepCurrent);

    auto r3 = cde.onPvtMiss(sig(1), wp, pvt);
    EXPECT_FALSE(r3.keepCurrent);
    EXPECT_TRUE(r3.registered);
    EXPECT_TRUE(r3.policy.vpuOn);  // 50% SIMD
    EXPECT_TRUE(pvt.contains(sig(1)));
    EXPECT_EQ(cde.policiesRegistered(), 1u);
    EXPECT_EQ(cde.profilingContinues(), 2u);
}

TEST(Cde, BpuUsesWindowOneLargeWindowTwoSmall)
{
    CdeParams params;
    params.profilingWindows = 2;
    Cde cde(params);
    Pvt pvt;
    // Window 1: large rate 0.05 (kept). Window 2: small rate 0.30
    // (kept); the bogus cross values must be ignored.
    cde.onPvtMiss(sig(2), profile(1000, 0, 0, 0.05, 0.99), pvt);
    auto r = cde.onPvtMiss(sig(2), profile(1000, 0, 0, 0.99, 0.30), pvt);
    ASSERT_TRUE(r.registered);
    EXPECT_TRUE(r.policy.bpuOn);  // 0.30 - 0.05 >> threshold
}

TEST(Cde, MlcUsesLastWindow)
{
    CdeParams params;
    params.profilingWindows = 3;
    Cde cde(params);
    Pvt pvt;
    // Early windows show no hits (re-warm); the last window shows
    // steady-state hits and must win.
    cde.onPvtMiss(sig(3), profile(1000, 0, 0, 0, 0), pvt);
    cde.onPvtMiss(sig(3), profile(1000, 0, 0, 0, 0), pvt);
    auto r = cde.onPvtMiss(sig(3), profile(1000, 0, 100, 0, 0), pvt);
    ASSERT_TRUE(r.registered);
    EXPECT_EQ(r.policy.mlc, MlcPolicy::AllWays);
}

TEST(Cde, CapacityMissReregisters)
{
    CdeParams params;
    params.profilingWindows = 1;
    Cde cde(params);
    Pvt pvt(PvtParams{2, 3});

    WindowProfile quiet = profile(1000, 0, 0, 0.1, 0.1);
    // Register three phases into a two-entry PVT; one gets evicted
    // into the CDE's memory-backed store.
    cde.onPvtMiss(sig(10), quiet, pvt);
    cde.onPvtMiss(sig(20), quiet, pvt);
    cde.onPvtMiss(sig(30), quiet, pvt);
    EXPECT_EQ(cde.storedPolicies(), 3u);

    // sig(10) was evicted; its next miss is a capacity miss that
    // re-registers without re-profiling.
    ASSERT_FALSE(pvt.contains(sig(10)));
    auto r = cde.onPvtMiss(sig(10), quiet, pvt);
    EXPECT_TRUE(r.registered);
    EXPECT_EQ(cde.capacityMisses(), 1u);
    EXPECT_EQ(cde.newPhases(), 3u);  // no new profiling
    EXPECT_TRUE(pvt.contains(sig(10)));
}

TEST(Cde, ChargesWorkCycles)
{
    Cde cde;
    Pvt pvt;
    auto r = cde.onPvtMiss(sig(4), profile(1000, 0, 0, 0, 0), pvt);
    EXPECT_DOUBLE_EQ(r.cycles, cde.params().workCycles);
}

// --- gating controller ----------------------------------------------------------------

namespace
{

struct Rig
{
    Vpu vpu{VpuParams{4, 16, 1.25}};
    BpuComplex bpu;
    MemHierarchy mem{CacheParams{1024, 2, 64}, CacheParams{16384, 8, 64}};
    GatingController ctrl{vpu, bpu, mem};
};

} // namespace

TEST(GatingController, VpuTransitionCostsSwitchPlusSaveRestore)
{
    Rig rig;
    GatingPolicy p = GatingPolicy::fullPower();
    p.vpuOn = false;
    double stall = rig.ctrl.applyPolicy(p);
    EXPECT_DOUBLE_EQ(stall, 30.0 + 500.0);
    EXPECT_FALSE(rig.vpu.on());
    EXPECT_EQ(rig.ctrl.stats().vpuSwitches, 1u);
}

TEST(GatingController, NoChangeNoCost)
{
    Rig rig;
    EXPECT_DOUBLE_EQ(rig.ctrl.applyPolicy(GatingPolicy::fullPower()), 0);
    EXPECT_EQ(rig.ctrl.stats().vpuSwitches, 0u);
}

TEST(GatingController, BpuTransitionGatesLarge)
{
    Rig rig;
    GatingPolicy p = GatingPolicy::fullPower();
    p.bpuOn = false;
    EXPECT_DOUBLE_EQ(rig.ctrl.applyPolicy(p), 20.0);
    EXPECT_FALSE(rig.bpu.largeOn());
    p.bpuOn = true;
    rig.ctrl.applyPolicy(p);
    EXPECT_TRUE(rig.bpu.largeOn());
}

TEST(GatingController, MlcTransitionWritesBackDirty)
{
    Rig rig;
    // Dirty lines across all ways of one set.
    const Addr set_stride = (16384 / 8 / 64) * 64;
    for (Addr i = 0; i < 8; ++i) {
        rig.mem.access(0x40000 + i * set_stride, true);
        rig.mem.access(0x40000 + i * set_stride, true);
    }
    GatingPolicy p = GatingPolicy::fullPower();
    p.mlc = MlcPolicy::OneWay;
    double stall = rig.ctrl.applyPolicy(p);
    const auto &st = rig.ctrl.stats();
    EXPECT_GT(st.mlcDirtyWritebacks, 0u);
    EXPECT_DOUBLE_EQ(stall,
                     50.0 + st.mlcDirtyWritebacks *
                                rig.ctrl.penalties()
                                    .mlcWritebackCyclesPerLine);
    EXPECT_EQ(rig.mem.mlc().activeWays(), 1u);
}

TEST(GatingController, ResidencyAccrual)
{
    Rig rig;
    rig.ctrl.accrue(100);
    GatingPolicy p = GatingPolicy::minPower();
    rig.ctrl.applyPolicy(p);
    rig.ctrl.accrue(50);
    const auto &st = rig.ctrl.stats();
    EXPECT_DOUBLE_EQ(st.vpuGatedCycles, 50);
    EXPECT_DOUBLE_EQ(st.bpuGatedCycles, 50);
    EXPECT_DOUBLE_EQ(st.mlcFullCycles, 100);
    EXPECT_DOUBLE_EQ(st.mlcOneWayCycles, 50);
}

TEST(GatingController, QuarterWaysTransition)
{
    Rig rig;
    GatingPolicy p = GatingPolicy::fullPower();
    p.mlc = MlcPolicy::QuarterWays;
    rig.ctrl.applyPolicy(p);
    EXPECT_EQ(rig.mem.mlc().activeWays(), 2u);
    EXPECT_DOUBLE_EQ(rig.ctrl.mlcActiveFraction(), 0.25);
    rig.ctrl.accrue(10);
    EXPECT_DOUBLE_EQ(rig.ctrl.stats().mlcQuarterCycles, 10);
}

TEST(GatingController, MlcActiveFraction)
{
    Rig rig;
    EXPECT_DOUBLE_EQ(rig.ctrl.mlcActiveFraction(), 1.0);
    GatingPolicy p = GatingPolicy::fullPower();
    p.mlc = MlcPolicy::HalfWays;
    rig.ctrl.applyPolicy(p);
    EXPECT_DOUBLE_EQ(rig.ctrl.mlcActiveFraction(), 0.5);
}

// --- timeout gater ------------------------------------------------------------------------

TEST(TimeoutGater, GatesAfterIdlePeriod)
{
    Vpu vpu;
    TimeoutParams params;
    params.timeoutCycles = 1000;
    TimeoutGater tg(vpu, params);

    EXPECT_DOUBLE_EQ(tg.checkIdle(500), 0);
    EXPECT_TRUE(vpu.on());
    double stall = tg.checkIdle(1500);
    EXPECT_DOUBLE_EQ(stall, params.switchCycles +
                                params.saveRestoreCycles);
    EXPECT_FALSE(vpu.on());
    EXPECT_EQ(tg.switches(), 1u);
}

TEST(TimeoutGater, UseResetsIdleClock)
{
    Vpu vpu;
    TimeoutParams params;
    params.timeoutCycles = 1000;
    TimeoutGater tg(vpu, params);
    EXPECT_DOUBLE_EQ(tg.onSimdUse(800), 0);  // on: no wake cost
    EXPECT_DOUBLE_EQ(tg.checkIdle(1500), 0); // only 700 idle
    EXPECT_TRUE(vpu.on());
}

TEST(TimeoutGater, WakesOnUseWithPenalty)
{
    Vpu vpu;
    TimeoutParams params;
    params.timeoutCycles = 100;
    TimeoutGater tg(vpu, params);
    tg.checkIdle(200);
    ASSERT_FALSE(vpu.on());
    double stall = tg.onSimdUse(5000);
    EXPECT_DOUBLE_EQ(stall, params.switchCycles +
                                params.saveRestoreCycles);
    EXPECT_TRUE(vpu.on());
    EXPECT_EQ(tg.switches(), 2u);
    EXPECT_DOUBLE_EQ(tg.gatedCycles(), 4800);
}

TEST(TimeoutGater, FinishAccountsTrailingGatedTime)
{
    Vpu vpu;
    TimeoutParams params;
    params.timeoutCycles = 100;
    TimeoutGater tg(vpu, params);
    tg.checkIdle(200);
    tg.finish(1200);
    EXPECT_DOUBLE_EQ(tg.gatedCycles(), 1000);
}

TEST(TimeoutGater, RejectsBadTimeout)
{
    Vpu vpu;
    TimeoutParams params;
    params.timeoutCycles = 0;
    EXPECT_THROW(TimeoutGater(vpu, params), FatalError);
}

// --- PowerChop orchestrator -----------------------------------------------------------------

TEST(PowerChopUnit, WindowTriggersPvtFlow)
{
    Rig rig;
    Nucleus nucleus;
    PerfMonitor monitor(rig.bpu, rig.mem);
    PowerChopParams params;
    params.htb.windowSize = 4;
    params.cde.profilingWindows = 2;
    PowerChopUnit pc(params, rig.ctrl, nucleus, monitor);

    int windows_seen = 0;
    pc.setWindowObserver([&](const WindowReport &) { ++windows_seen; });

    // Two full windows of the same four translations: first window is
    // a compulsory PVT miss (profiling starts), second completes the
    // profile and registers the policy.
    for (int w = 0; w < 2; ++w) {
        for (TranslationId id = 1; id <= 4; ++id)
            pc.onTranslationHead(id, 25);
    }
    EXPECT_EQ(windows_seen, 2);
    EXPECT_EQ(pc.pvt().lookups(), 2u);
    EXPECT_EQ(pc.pvt().misses(), 2u);
    EXPECT_EQ(pc.cde().policiesRegistered(), 1u);
    EXPECT_EQ(nucleus.count(InterruptKind::PvtMiss), 2u);

    // Third window: PVT hit, no interrupt.
    for (TranslationId id = 1; id <= 4; ++id)
        pc.onTranslationHead(id, 25);
    EXPECT_EQ(pc.pvt().hits(), 1u);
    EXPECT_EQ(nucleus.count(InterruptKind::PvtMiss), 2u);
    EXPECT_EQ(pc.translationsSeen(), 12u);
}

TEST(PowerChopUnit, AppliesRegisteredPolicy)
{
    Rig rig;
    Nucleus nucleus;
    PerfMonitor monitor(rig.bpu, rig.mem);
    PowerChopParams params;
    params.htb.windowSize = 2;
    params.cde.profilingWindows = 1;
    PowerChopUnit pc(params, rig.ctrl, nucleus, monitor);

    // No SIMD committed, no L2 hits -> min-power policy expected.
    pc.onTranslationHead(1, 50);
    pc.onTranslationHead(2, 50);
    EXPECT_FALSE(rig.vpu.on());
    EXPECT_FALSE(rig.bpu.largeOn());
    EXPECT_EQ(rig.mem.mlc().activeWays(), 1u);
}
