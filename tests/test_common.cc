/**
 * @file
 * Unit tests for the common substrate: logging, RNG, stats, integer
 * math and saturating counters.
 */

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/intmath.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/sat_counter.hh"
#include "common/stats.hh"

using namespace powerchop;

// --- logging ---------------------------------------------------------------

TEST(Logging, CsprintfFormats)
{
    EXPECT_EQ(csprintf("x=%d", 42), "x=42");
    EXPECT_EQ(csprintf("%s-%s", "a", "b"), "a-b");
    EXPECT_EQ(csprintf("%04x", 0xabu), "00ab");
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("boom %d", 1), PanicError);
    try {
        panic("code %d", 7);
    } catch (const PanicError &e) {
        EXPECT_NE(std::string(e.what()).find("code 7"), std::string::npos);
    }
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config"), FatalError);
}

TEST(Logging, PanicIfOnlyFiresWhenTrue)
{
    EXPECT_NO_THROW(panicIf(false, "nope"));
    EXPECT_THROW(panicIf(true, "yes"), PanicError);
}

TEST(Logging, QuietSuppressesard)
{
    setQuiet(true);
    EXPECT_TRUE(quiet());
    warn("should not print");
    inform("should not print");
    setQuiet(false);
    EXPECT_FALSE(quiet());
}

// --- rng --------------------------------------------------------------------

TEST(Rng, DeterministicFromSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(7);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, BelowRespectsBound)
{
    Rng r(9);
    for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            ASSERT_LT(r.below(bound), bound);
    }
    EXPECT_THROW(r.below(0), PanicError);
}

TEST(Rng, BelowCoversRange)
{
    Rng r(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(r.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(13);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = r.range(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        saw_lo |= (v == -3);
        saw_hi |= (v == 3);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
    EXPECT_THROW(r.range(2, 1), PanicError);
}

TEST(Rng, BernoulliEdges)
{
    Rng r(17);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(r.bernoulli(0.0));
        EXPECT_TRUE(r.bernoulli(1.0));
        EXPECT_FALSE(r.bernoulli(-1.0));
        EXPECT_TRUE(r.bernoulli(2.0));
    }
}

TEST(Rng, BernoulliRate)
{
    Rng r(19);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += r.bernoulli(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, NormalMoments)
{
    Rng r(23);
    double sum = 0, sq = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double v = r.normal(10.0, 2.0);
        sum += v;
        sq += v * v;
    }
    double mean = sum / n;
    double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.1);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.15);
}

TEST(Rng, BurstLengthBounds)
{
    Rng r(29);
    for (int i = 0; i < 200; ++i) {
        auto b = r.burstLength(0.9, 16);
        ASSERT_GE(b, 1u);
        ASSERT_LE(b, 16u);
    }
    EXPECT_EQ(r.burstLength(0.0, 16), 1u);
    EXPECT_EQ(r.burstLength(1.0, 5), 5u);
}

// --- intmath ----------------------------------------------------------------

TEST(IntMath, PowerOfTwo)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_TRUE(isPowerOf2(1024));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_FALSE(isPowerOf2(1023));
}

TEST(IntMath, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
}

TEST(IntMath, CeilPowerOf2)
{
    EXPECT_EQ(ceilPowerOf2(0), 1u);
    EXPECT_EQ(ceilPowerOf2(1), 1u);
    EXPECT_EQ(ceilPowerOf2(3), 4u);
    EXPECT_EQ(ceilPowerOf2(1025), 2048u);
}

TEST(IntMath, Alignment)
{
    EXPECT_EQ(alignDown(67, 64), 64u);
    EXPECT_EQ(alignUp(67, 64), 128u);
    EXPECT_EQ(alignUp(64, 64), 64u);
    EXPECT_EQ(divCeil(10, 3), 4u);
    EXPECT_EQ(divCeil(9, 3), 3u);
}

// --- saturating counter -----------------------------------------------------

TEST(SatCounter, SaturatesBothEnds)
{
    SatCounter c(2, 0);
    EXPECT_EQ(c.value(), 0u);
    c.decrement();
    EXPECT_EQ(c.value(), 0u);
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_EQ(c.value(), 3u);
    EXPECT_EQ(c.maxValue(), 3u);
}

TEST(SatCounter, IsSetAtUpperHalf)
{
    SatCounter c(2, 1);
    EXPECT_FALSE(c.isSet());
    c.increment();
    EXPECT_TRUE(c.isSet());
    c.decrement();
    EXPECT_FALSE(c.isSet());
}

TEST(SatCounter, ResetClamps)
{
    SatCounter c(3);
    c.reset(100);
    EXPECT_EQ(c.value(), 7u);
    c.reset(2);
    EXPECT_EQ(c.value(), 2u);
}

TEST(SatCounter, RejectsBadWidth)
{
    EXPECT_THROW(SatCounter(0), PanicError);
    EXPECT_THROW(SatCounter(9), PanicError);
}

// --- stats -------------------------------------------------------------------

TEST(Stats, ScalarAccumulates)
{
    stats::Scalar s;
    ++s;
    s += 4;
    EXPECT_EQ(s.value(), 5u);
    s.reset();
    EXPECT_EQ(s.value(), 0u);
}

TEST(Stats, AverageMean)
{
    stats::Average a;
    EXPECT_EQ(a.mean(), 0.0);
    a.sample(2);
    a.sample(4);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_EQ(a.count(), 2u);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
}

TEST(Stats, DistributionBuckets)
{
    stats::Distribution d(0, 10, 10);
    d.sample(0.5);
    d.sample(5.5);
    d.sample(9.9);
    EXPECT_EQ(d.bucketCount(0), 1u);
    EXPECT_EQ(d.bucketCount(5), 1u);
    EXPECT_EQ(d.bucketCount(9), 1u);
    EXPECT_EQ(d.totalSamples(), 3u);
    EXPECT_NEAR(d.mean(), (0.5 + 5.5 + 9.9) / 3, 1e-9);
}

TEST(Stats, DistributionEdges)
{
    stats::Distribution d(0, 10, 5);
    d.sample(-1);
    d.sample(100);
    EXPECT_EQ(d.underflows(), 1u);
    EXPECT_EQ(d.overflows(), 1u);
    EXPECT_EQ(d.bucketCount(0), 1u);
    EXPECT_EQ(d.bucketCount(4), 1u);
    EXPECT_THROW(d.bucketCount(5), PanicError);
}

TEST(Stats, DistributionValidation)
{
    EXPECT_THROW(stats::Distribution(0, 10, 0), PanicError);
    EXPECT_THROW(stats::Distribution(5, 5, 2), PanicError);
}

TEST(Stats, GroupDump)
{
    stats::Scalar s;
    s += 3;
    stats::Average a;
    a.sample(1.5);
    stats::Group g("core0");
    g.addScalar("insts", &s);
    g.addAverage("ipc", &a);
    std::string dump = g.dump();
    EXPECT_NE(dump.find("core0.insts 3"), std::string::npos);
    EXPECT_NE(dump.find("core0.ipc 1.5"), std::string::npos);
}

TEST(Stats, DistributionPercentile)
{
    stats::Distribution d(0, 10, 10);
    for (int i = 0; i < 10; ++i)
        d.sample(i + 0.5); // One sample per bucket.

    // p of the mass is reached in bucket ceil(10p)-1, whose upper
    // edge is ceil(10p).
    EXPECT_DOUBLE_EQ(d.percentile(0.1), 1.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.5), 5.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.95), 10.0);
    EXPECT_DOUBLE_EQ(d.percentile(1.0), 10.0);
    // p = 0 answers with the first bucket's upper edge.
    EXPECT_DOUBLE_EQ(d.percentile(0.0), 1.0);
}

TEST(Stats, DistributionPercentileSkewed)
{
    stats::Distribution d(0, 100, 100);
    for (int i = 0; i < 99; ++i)
        d.sample(0.5);
    d.sample(99.5);
    EXPECT_DOUBLE_EQ(d.percentile(0.5), 1.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.99), 1.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.999), 100.0);
}

TEST(Stats, DistributionPercentileClampsOutOfRange)
{
    stats::Distribution d(0, 10, 5);
    d.sample(-50);
    d.sample(500);
    // Out-of-range samples live in the edge buckets, so percentiles
    // stay within [min, max].
    EXPECT_DOUBLE_EQ(d.percentile(0.25), 2.0);
    EXPECT_DOUBLE_EQ(d.percentile(1.0), 10.0);
}

TEST(Stats, DistributionPercentileValidation)
{
    stats::Distribution d(0, 10, 5);
    EXPECT_THROW(d.percentile(0.5), PanicError); // Empty.
    d.sample(1);
    EXPECT_THROW(d.percentile(-0.1), PanicError);
    EXPECT_THROW(d.percentile(1.1), PanicError);
}

TEST(Stats, GroupToJson)
{
    stats::Scalar s;
    s += 42;
    stats::Average a;
    a.sample(1.0);
    a.sample(2.0);
    stats::Group g("core0");
    g.addScalar("insts", &s);
    g.addAverage("ipc", &a);
    EXPECT_EQ(g.toJson(), "{\"core0.insts\":42,\"core0.ipc\":1.5}");
}

TEST(Stats, GroupToJsonEmpty)
{
    stats::Group g("idle");
    EXPECT_EQ(g.toJson(), "{}");
}

TEST(Stats, GroupAccessorsSorted)
{
    stats::Scalar s1, s2;
    stats::Group g("g");
    g.addScalar("zeta", &s1);
    g.addScalar("alpha", &s2);
    ASSERT_EQ(g.scalars().size(), 2u);
    EXPECT_EQ(g.scalars().begin()->first, "alpha");
    EXPECT_TRUE(g.averages().empty());
}
