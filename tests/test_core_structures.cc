/**
 * @file
 * Unit tests for PowerChop's core structures: phase signatures, the
 * HTB, the PVT and policy vectors.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/htb.hh"
#include "core/policy.hh"
#include "core/pvt.hh"
#include "core/signature.hh"

using namespace powerchop;

// --- signatures ------------------------------------------------------------------

TEST(Signature, CanonicalOrder)
{
    TranslationId a[] = {40, 10, 30, 20};
    TranslationId b[] = {10, 20, 30, 40};
    EXPECT_EQ(PhaseSignature(a, 4), PhaseSignature(b, 4));
}

TEST(Signature, DistinctSetsDiffer)
{
    TranslationId a[] = {1, 2, 3, 4};
    TranslationId b[] = {1, 2, 3, 5};
    EXPECT_NE(PhaseSignature(a, 4), PhaseSignature(b, 4));
}

TEST(Signature, PartialSignaturesPadded)
{
    TranslationId a[] = {7, 3};
    PhaseSignature s(a, 2);
    EXPECT_EQ(s.ids()[0], 3u);
    EXPECT_EQ(s.ids()[1], 7u);
    EXPECT_EQ(s.ids()[2], invalidTranslationId);
    EXPECT_FALSE(s.empty());
}

TEST(Signature, EmptyDefault)
{
    EXPECT_TRUE(PhaseSignature().empty());
}

TEST(Signature, HashConsistentWithEquality)
{
    TranslationId a[] = {40, 10, 30, 20};
    TranslationId b[] = {10, 20, 30, 40};
    EXPECT_EQ(PhaseSignature(a, 4).hash(), PhaseSignature(b, 4).hash());
}

TEST(Signature, TooManyIdsPanics)
{
    TranslationId a[] = {1, 2, 3, 4, 5};
    EXPECT_THROW(PhaseSignature(a, 5), PanicError);
}

TEST(Signature, ToStringShowsIds)
{
    TranslationId a[] = {0xab, 0xcd, 0xef, 0x12};
    std::string s = PhaseSignature(a, 4).toString();
    EXPECT_NE(s.find("000000ab"), std::string::npos);
}

// --- HTB ----------------------------------------------------------------------------

TEST(Htb, EmitsReportAtWindowBoundary)
{
    Htb htb(HtbParams{8, 5});
    for (int i = 0; i < 4; ++i)
        EXPECT_FALSE(htb.recordTranslation(100 + i, 10).has_value());
    auto rep = htb.recordTranslation(104, 10);
    ASSERT_TRUE(rep.has_value());
    EXPECT_EQ(rep->translations, 5u);
    EXPECT_EQ(rep->instructions, 50u);
    EXPECT_EQ(htb.windowsCompleted(), 1u);
}

TEST(Htb, SignatureIsHottestFour)
{
    Htb htb(HtbParams{16, 10});
    // Translation 1 is hottest by instruction volume, then 2, 3, 4.
    std::optional<WindowReport> rep;
    rep = htb.recordTranslation(1, 100);
    rep = htb.recordTranslation(2, 80);
    rep = htb.recordTranslation(3, 60);
    rep = htb.recordTranslation(4, 40);
    rep = htb.recordTranslation(5, 20);
    for (int i = 0; i < 5; ++i)
        rep = htb.recordTranslation(1, 10);  // more heat on 1
    ASSERT_TRUE(rep.has_value());
    auto ids = rep->signature.ids();
    EXPECT_EQ(ids[0], 1u);
    EXPECT_EQ(ids[1], 2u);
    EXPECT_EQ(ids[2], 3u);
    EXPECT_EQ(ids[3], 4u);
}

TEST(Htb, AccumulatesPerTranslation)
{
    Htb htb(HtbParams{8, 3});
    htb.recordTranslation(7, 10);
    htb.recordTranslation(7, 15);
    auto rep = htb.recordTranslation(9, 5);
    ASSERT_TRUE(rep.has_value());
    ASSERT_EQ(rep->profile.size(), 2u);
    EXPECT_EQ(rep->profile[0].first, 7u);
    EXPECT_EQ(rep->profile[0].second, 25u);
    EXPECT_EQ(rep->profile[1].second, 5u);
}

TEST(Htb, FlushesBetweenWindows)
{
    Htb htb(HtbParams{8, 2});
    htb.recordTranslation(1, 10);
    htb.recordTranslation(2, 10);
    EXPECT_EQ(htb.occupancy(), 0u);
    htb.recordTranslation(3, 10);
    auto rep = htb.recordTranslation(4, 10);
    ASSERT_TRUE(rep.has_value());
    EXPECT_EQ(rep->profile.size(), 2u);
    EXPECT_EQ(rep->profile[0].first, 3u);
}

TEST(Htb, OverflowDropsExcessTranslations)
{
    Htb htb(HtbParams{4, 100});
    for (TranslationId id = 1; id <= 10; ++id)
        htb.recordTranslation(id, 5);
    EXPECT_EQ(htb.overflowDrops(), 6u);
    EXPECT_EQ(htb.occupancy(), 4u);
}

TEST(Htb, FlushWindowEmitsPartial)
{
    Htb htb(HtbParams{8, 100});
    EXPECT_FALSE(htb.flushWindow().has_value());
    htb.recordTranslation(1, 10);
    auto rep = htb.flushWindow();
    ASSERT_TRUE(rep.has_value());
    EXPECT_EQ(rep->translations, 1u);
}

TEST(Htb, RejectsInvalidId)
{
    Htb htb;
    EXPECT_THROW(htb.recordTranslation(invalidTranslationId, 1),
                 PanicError);
}

TEST(Htb, ValidatesParams)
{
    EXPECT_THROW(Htb(HtbParams{2, 100}), FatalError);
    EXPECT_THROW(Htb(HtbParams{128, 0}), FatalError);
}

// --- policies -----------------------------------------------------------------------

TEST(Policy, EncodeDecodeRoundTrip)
{
    for (unsigned bits = 0; bits < 16; ++bits) {
        GatingPolicy p = GatingPolicy::decode(bits);
        GatingPolicy q = GatingPolicy::decode(p.encode());
        EXPECT_EQ(p, q);
    }
}

TEST(Policy, EncodingLayout)
{
    GatingPolicy p;
    p.vpuOn = true;
    p.bpuOn = false;
    p.mlc = MlcPolicy::HalfWays;
    EXPECT_EQ(p.encode(), 0b1001);
}

TEST(Policy, MlcActiveWays)
{
    EXPECT_EQ(mlcActiveWays(MlcPolicy::AllWays, 8), 8u);
    EXPECT_EQ(mlcActiveWays(MlcPolicy::HalfWays, 8), 4u);
    EXPECT_EQ(mlcActiveWays(MlcPolicy::QuarterWays, 8), 2u);
    EXPECT_EQ(mlcActiveWays(MlcPolicy::OneWay, 8), 1u);
    EXPECT_EQ(mlcActiveWays(MlcPolicy::HalfWays, 1), 1u);
    EXPECT_EQ(mlcActiveWays(MlcPolicy::QuarterWays, 2), 1u);
}

TEST(Policy, Extremes)
{
    EXPECT_EQ(GatingPolicy::fullPower().encode(), 0b1111);
    EXPECT_EQ(GatingPolicy::minPower().encode(), 0b0000);
}

TEST(Policy, ToStringReadable)
{
    EXPECT_EQ(GatingPolicy::minPower().toString(), "V=0,B=0,M=1-way");
}

// --- PVT -----------------------------------------------------------------------------

namespace
{

PhaseSignature
sig(TranslationId base)
{
    TranslationId ids[] = {base, base + 1, base + 2, base + 3};
    return PhaseSignature(ids, 4);
}

} // namespace

TEST(Pvt, MissThenHitAfterRegistration)
{
    Pvt pvt;
    EXPECT_FALSE(pvt.lookup(sig(10)).has_value());
    pvt.registerPolicy(sig(10), GatingPolicy::minPower());
    auto hit = pvt.lookup(sig(10));
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, GatingPolicy::minPower());
    EXPECT_EQ(pvt.lookups(), 2u);
    EXPECT_EQ(pvt.hits(), 1u);
    EXPECT_EQ(pvt.misses(), 1u);
}

TEST(Pvt, UpdateInPlace)
{
    Pvt pvt;
    pvt.registerPolicy(sig(10), GatingPolicy::minPower());
    pvt.registerPolicy(sig(10), GatingPolicy::fullPower());
    EXPECT_EQ(pvt.occupancy(), 1u);
    EXPECT_EQ(*pvt.lookup(sig(10)), GatingPolicy::fullPower());
}

TEST(Pvt, EvictsApproximateLru)
{
    Pvt pvt(PvtParams{4, 3});
    for (TranslationId i = 0; i < 4; ++i)
        pvt.registerPolicy(sig(i * 10), GatingPolicy::fullPower());
    // Touch all but sig(10) so it ages.
    pvt.lookup(sig(0));
    pvt.lookup(sig(20));
    pvt.lookup(sig(30));
    auto evicted = pvt.registerPolicy(sig(40), GatingPolicy::minPower());
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->signature, sig(10));
    EXPECT_FALSE(pvt.contains(sig(10)));
    EXPECT_TRUE(pvt.contains(sig(40)));
    EXPECT_EQ(pvt.evictions(), 1u);
}

TEST(Pvt, NoEvictionWhileFree)
{
    Pvt pvt(PvtParams{4, 3});
    for (TranslationId i = 0; i < 4; ++i) {
        EXPECT_FALSE(pvt.registerPolicy(sig(i * 10),
                                        GatingPolicy::fullPower())
                         .has_value());
    }
}

TEST(Pvt, StorageNearPaperFigure)
{
    // Paper: 16 entries, 4 x 32-bit PCs + 4 policy bits = 264 bytes
    // (we also count the approximate-LRU age bits).
    Pvt pvt;
    EXPECT_GE(pvt.storageBytes(), 264u);
    EXPECT_LE(pvt.storageBytes(), 280u);
}

TEST(Pvt, ValidatesParams)
{
    EXPECT_THROW(Pvt(PvtParams{0, 3}), FatalError);
    EXPECT_THROW(Pvt(PvtParams{16, 0}), FatalError);
    EXPECT_THROW(Pvt(PvtParams{16, 9}), FatalError);
}
