/**
 * @file
 * Unit tests for the drowsy-MLC baseline: cache drowsy states, the
 * periodic controller, and the end-to-end mode.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/drowsy_mlc.hh"
#include "sim/simulator.hh"
#include "uarch/cache.hh"
#include "workload/suites.hh"

using namespace powerchop;

TEST(DrowsyCache, DrowseAllPutsValidLinesToSleep)
{
    SetAssocCache c(CacheParams{8 * 1024, 4, 64});
    c.access(0x1000, false);
    c.access(0x2000, false);
    EXPECT_EQ(c.awakeLineCount(), 2u);
    EXPECT_EQ(c.drowseAll(), 2u);
    EXPECT_EQ(c.awakeLineCount(), 0u);
    // Idempotent: already-drowsy lines are not re-slept.
    EXPECT_EQ(c.drowseAll(), 0u);
}

TEST(DrowsyCache, AccessWakesAndStillHits)
{
    SetAssocCache c(CacheParams{8 * 1024, 4, 64});
    c.access(0x1000, true);
    c.drowseAll();
    CacheAccessResult r = c.access(0x1000, false);
    EXPECT_TRUE(r.hit);            // drowsy lines retain contents
    EXPECT_TRUE(r.wokeDrowsy);
    EXPECT_EQ(c.drowsyWakes(), 1u);
    // Second access: already awake.
    EXPECT_FALSE(c.access(0x1000, false).wokeDrowsy);
    EXPECT_EQ(c.awakeLineCount(), 1u);
}

TEST(DrowsyCache, NewLinesStartAwake)
{
    SetAssocCache c(CacheParams{8 * 1024, 4, 64});
    c.drowseAll();
    c.access(0x3000, false);
    EXPECT_EQ(c.awakeLineCount(), 1u);
}

TEST(DrowsyMlcController, SweepsAtInterval)
{
    MemHierarchy mem(CacheParams{1024, 2, 64}, CacheParams{8192, 4, 64});
    DrowsyParams params;
    params.intervalCycles = 1000;
    DrowsyMlc d(mem, params);

    mem.access(0x10000, false);   // one MLC line
    d.tick(999);
    EXPECT_EQ(d.sweeps(), 0u);
    EXPECT_EQ(mem.mlc().awakeLineCount(), 1u);
    d.tick(1001);
    EXPECT_EQ(d.sweeps(), 1u);
    EXPECT_EQ(mem.mlc().awakeLineCount(), 0u);
    // Multiple missed intervals catch up.
    d.tick(4100);
    EXPECT_EQ(d.sweeps(), 4u);
}

TEST(DrowsyMlcController, AveragesDrowsyFraction)
{
    MemHierarchy mem(CacheParams{1024, 2, 64}, CacheParams{8192, 4, 64});
    DrowsyParams params;
    params.intervalCycles = 100;
    DrowsyMlc d(mem, params);
    // Never touch the MLC: everything is invalid (counted drowsy-
    // equivalent), so the average is ~1.
    d.tick(1000);
    d.finish(1000);
    EXPECT_NEAR(d.avgDrowsyFraction(), 1.0, 1e-9);
}

TEST(DrowsyMlcController, Validation)
{
    MemHierarchy mem(CacheParams{1024, 2, 64}, CacheParams{8192, 4, 64});
    DrowsyParams bad;
    bad.intervalCycles = 0;
    EXPECT_THROW(DrowsyMlc(mem, bad), FatalError);
    DrowsyParams bad2;
    bad2.drowsyLeakageFraction = 2;
    EXPECT_THROW(DrowsyMlc(mem, bad2), FatalError);
}

TEST(DrowsyMode, EndToEndSavesMlcLeakageAtSmallSlowdown)
{
    // gems re-touches MLC-resident lines constantly, so drowsy lines
    // get woken; most of the big array still averages drowsy.
    WorkloadSpec w = findWorkload("gems");
    MachineConfig m = serverConfig();
    SimOptions opts;
    opts.maxInstructions = 2'000'000;

    opts.mode = SimMode::FullPower;
    SimResult full = simulate(m, w, opts);

    opts.mode = SimMode::DrowsyMlc;
    SimResult dr = simulate(m, w, opts);

    EXPECT_GT(dr.mlcDrowsyFraction, 0.3);
    EXPECT_GT(dr.drowsyWakes, 1000u);
    EXPECT_LT(dr.energy.averageLeakagePower(),
              full.energy.averageLeakagePower());
    EXPECT_LT(dr.slowdownVs(full), 0.04);
    // Drowsy never gates the ways or other units.
    EXPECT_DOUBLE_EQ(dr.vpuGatedFraction, 0.0);
    EXPECT_DOUBLE_EQ(dr.mlcOneWayFraction, 0.0);
}

TEST(DrowsyMode, NameIsReported)
{
    EXPECT_STREQ(simModeName(SimMode::DrowsyMlc), "drowsy-mlc");
}
