/**
 * @file
 * Tests for the robustness subsystem: the deterministic fault
 * injector, the QoS watchdog's safe-mode rollback, machine-config
 * validation, the centralized environment parsing, and the robust
 * batch runner (error isolation, timeouts, retries) — including the
 * two bit-identity guarantees: a zero fault rate reproduces the
 * baseline exactly, and a fixed (seed, rate) configuration reproduces
 * the exact same faulted run on any worker count.
 */

#include <atomic>
#include <cstdlib>
#include <gtest/gtest.h>
#include <limits>

#include "common/env.hh"
#include "common/logging.hh"
#include "core/fault_injector.hh"
#include "core/qos_watchdog.hh"
#include "sim/sim_runner.hh"
#include "workload/suites.hh"

using namespace powerchop;

namespace
{

WorkloadSpec
smallWorkload(unsigned seed = 7)
{
    WorkloadSpec w;
    w.name = "resil-" + std::to_string(seed);
    w.seed = seed;
    PhaseSpec compute;
    compute.name = "compute";
    compute.simdFrac = 0.2;
    PhaseSpec memory;
    memory.name = "memory";
    memory.memFrac = 0.3;
    memory.mem.workingSetBytes = 256 * 1024;
    memory.mem.hotRegionFrac = 0.8;
    memory.mem.randomFrac = 0.5;
    w.phases = {compute, memory};
    w.schedule = {{0, 60'000}, {1, 90'000}};
    return w;
}

FaultInjectorParams
allFaultsAt(double rate)
{
    FaultInjectorParams p;
    p.enabled = rate > 0;
    p.policyCorruptRate = rate;
    p.htbDropRate = rate;
    p.htbAliasRate = rate;
    p.controllerFlipRate = rate;
    p.wakeupStretchRate = rate;
    return p;
}

SimJob
faultedJob(double rate, unsigned seed = 7)
{
    SimJob job;
    job.machine = serverConfig();
    job.machine.faults = allFaultsAt(rate);
    job.machine.powerChop.qos.enabled = true;
    job.workload = smallWorkload(seed);
    job.opts.mode = SimMode::PowerChop;
    job.opts.maxInstructions = 150'000;
    return job;
}

void
expectIdentical(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.toJson(), b.toJson());
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.energy.totalEnergy(), b.energy.totalEnergy());
}

/** RAII environment-variable override. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        if (old) {
            had_ = true;
            old_ = old;
        }
        if (value)
            setenv(name, value, 1);
        else
            unsetenv(name);
    }
    ~ScopedEnv()
    {
        if (had_)
            setenv(name_, old_.c_str(), 1);
        else
            unsetenv(name_);
    }

  private:
    const char *name_;
    bool had_ = false;
    std::string old_;
};

} // namespace

// --- fault injector ----------------------------------------------------------

TEST(FaultInjector, DisabledInjectorIsNoOp)
{
    FaultInjector inj;  // default params: disabled
    EXPECT_FALSE(inj.active());

    const GatingPolicy policy = GatingPolicy::minPower();
    EXPECT_EQ(inj.corruptPolicy(policy), policy);
    EXPECT_FALSE(inj.dropTranslation());
    EXPECT_EQ(inj.aliasTranslation(42), 42u);
    EXPECT_EQ(inj.flipControllerState(policy), policy);
    EXPECT_EQ(inj.stretchWakeup(100.0), 100.0);
    EXPECT_EQ(inj.stats().total(), 0u);
}

TEST(FaultInjector, EnabledWithZeroRatesIsNoOp)
{
    FaultInjectorParams p;
    p.enabled = true;
    FaultInjector inj(p);
    EXPECT_TRUE(inj.active());

    const GatingPolicy policy = GatingPolicy::fullPower();
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(inj.corruptPolicy(policy), policy);
        EXPECT_FALSE(inj.dropTranslation());
        EXPECT_EQ(inj.aliasTranslation(7), 7u);
        EXPECT_EQ(inj.stretchWakeup(50.0), 50.0);
    }
    EXPECT_EQ(inj.stats().total(), 0u);
}

TEST(FaultInjector, RateOneAlwaysInjects)
{
    FaultInjectorParams p = allFaultsAt(1.0);
    p.wakeupStretchFactor = 4.0;
    FaultInjector inj(p);

    const GatingPolicy policy = GatingPolicy::fullPower();
    // A single-bit flip of a 4-bit encoding always changes the
    // decoded policy.
    EXPECT_NE(inj.corruptPolicy(policy), policy);
    EXPECT_TRUE(inj.dropTranslation());
    const TranslationId id = 42;
    const TranslationId aliased = inj.aliasTranslation(id);
    EXPECT_NE(aliased, id);
    EXPECT_NE(inj.flipControllerState(policy), policy);
    EXPECT_EQ(inj.stretchWakeup(100.0), 400.0);

    const FaultStats &s = inj.stats();
    EXPECT_EQ(s.policyCorruptions, 1u);
    EXPECT_EQ(s.htbDrops, 1u);
    EXPECT_EQ(s.htbAliases, 1u);
    EXPECT_EQ(s.controllerFlips, 1u);
    EXPECT_EQ(s.wakeupStretches, 1u);
    EXPECT_EQ(s.total(), 5u);
}

TEST(FaultInjector, ZeroStallIsNeverStretched)
{
    FaultInjectorParams p = allFaultsAt(1.0);
    FaultInjector inj(p);
    // No transition -> nothing to stretch; stats must not count one.
    EXPECT_EQ(inj.stretchWakeup(0.0), 0.0);
    EXPECT_EQ(inj.stats().wakeupStretches, 0u);
}

TEST(FaultInjector, SameSeedSameFaultSequence)
{
    const FaultInjectorParams p = allFaultsAt(0.3);
    FaultInjector a(p), b(p);
    for (int i = 0; i < 500; ++i) {
        const GatingPolicy policy = GatingPolicy::decode(i & 0xf);
        EXPECT_EQ(a.corruptPolicy(policy), b.corruptPolicy(policy));
        EXPECT_EQ(a.dropTranslation(), b.dropTranslation());
        EXPECT_EQ(a.aliasTranslation(i + 1), b.aliasTranslation(i + 1));
        EXPECT_EQ(a.stretchWakeup(i * 10.0), b.stretchWakeup(i * 10.0));
    }
    EXPECT_EQ(a.stats().total(), b.stats().total());
    EXPECT_GT(a.stats().total(), 0u);
}

TEST(FaultInjector, ValidateNamesTheBadField)
{
    setQuiet(true);
    FaultInjectorParams p;
    p.policyCorruptRate = 1.5;
    try {
        p.validate("test");
        FAIL() << "expected fatal()";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("policyCorruptRate"),
                  std::string::npos);
    }

    p = FaultInjectorParams{};
    p.wakeupStretchFactor = 0.5;
    try {
        p.validate("test");
        FAIL() << "expected fatal()";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("wakeupStretchFactor"),
                  std::string::npos);
    }
    setQuiet(false);
}

// --- QoS watchdog ------------------------------------------------------------

namespace
{

QosParams
watchdogParams()
{
    QosParams p;
    p.enabled = true;
    p.slowdownThreshold = 0.05;
    p.violationWindows = 2;
    p.cooldownWindows = 4;
    p.referenceDecay = 1.0;  // no decay: deterministic thresholds
    return p;
}

} // namespace

TEST(QosWatchdog, DisabledNeverActs)
{
    QosWatchdog dog;
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(dog.onWindow(1000, i * 10'000.0),
                  QosWatchdog::Action::None);
    }
    EXPECT_FALSE(dog.inSafeMode());
    EXPECT_EQ(dog.stats().windowsObserved, 0u);
}

TEST(QosWatchdog, TriggersAfterConsecutiveViolations)
{
    QosWatchdog dog(watchdogParams());
    Cycles now = 0;

    // Establish a reference of IPC 1.0 (1000 insns / 1000 cycles).
    EXPECT_EQ(dog.onWindow(1000, now), QosWatchdog::Action::None);
    now += 1000;
    EXPECT_EQ(dog.onWindow(1000, now), QosWatchdog::Action::None);

    // Two consecutive windows at IPC 0.5 (>5% below reference).
    now += 2000;
    EXPECT_EQ(dog.onWindow(1000, now), QosWatchdog::Action::None);
    now += 2000;
    EXPECT_EQ(dog.onWindow(1000, now),
              QosWatchdog::Action::EnterSafeMode);

    EXPECT_TRUE(dog.inSafeMode());
    EXPECT_EQ(dog.stats().violations, 2u);
    EXPECT_EQ(dog.stats().safeModeActivations, 1u);
}

TEST(QosWatchdog, SingleNoisyWindowIsTolerated)
{
    QosWatchdog dog(watchdogParams());
    Cycles now = 0;
    dog.onWindow(1000, now);
    now += 1000;
    dog.onWindow(1000, now);  // reference = 1.0

    // One violating window, then recovery: never enters safe mode.
    now += 2000;
    EXPECT_EQ(dog.onWindow(1000, now), QosWatchdog::Action::None);
    now += 1000;
    EXPECT_EQ(dog.onWindow(1000, now), QosWatchdog::Action::None);
    now += 2000;
    EXPECT_EQ(dog.onWindow(1000, now), QosWatchdog::Action::None);
    EXPECT_FALSE(dog.inSafeMode());
    EXPECT_EQ(dog.stats().safeModeActivations, 0u);
}

TEST(QosWatchdog, CooldownExpiresAndReferenceResets)
{
    QosParams params = watchdogParams();
    QosWatchdog dog(params);
    Cycles now = 0;
    dog.onWindow(1000, now);
    now += 1000;
    dog.onWindow(1000, now);
    now += 2000;
    dog.onWindow(1000, now);
    now += 2000;
    ASSERT_EQ(dog.onWindow(1000, now),
              QosWatchdog::Action::EnterSafeMode);

    // Safe mode holds for cooldownWindows windows (still slow ones).
    for (unsigned i = 0; i < params.cooldownWindows; ++i) {
        EXPECT_TRUE(dog.inSafeMode());
        now += 2000;
        EXPECT_EQ(dog.onWindow(1000, now), QosWatchdog::Action::None);
    }
    EXPECT_FALSE(dog.inSafeMode());
    EXPECT_EQ(dog.stats().safeModeWindows, params.cooldownWindows);

    // The reference was re-learned at the post-rollback IPC (0.5), so
    // continuing at that pace is no longer a violation.
    now += 2000;
    EXPECT_EQ(dog.onWindow(1000, now), QosWatchdog::Action::None);
    EXPECT_FALSE(dog.inSafeMode());
}

TEST(QosWatchdog, SafePolicyIsFullPower)
{
    QosWatchdog dog(watchdogParams());
    EXPECT_EQ(dog.safePolicy(), GatingPolicy::fullPower());
}

TEST(QosWatchdog, ValidateNamesTheBadField)
{
    setQuiet(true);
    QosParams p;
    p.slowdownThreshold = 1.5;
    try {
        p.validate("test");
        FAIL() << "expected fatal()";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("slowdownThreshold"),
                  std::string::npos);
    }
    p = QosParams{};
    p.violationWindows = 0;
    EXPECT_THROW(p.validate("test"), FatalError);
    setQuiet(false);
}

// --- machine-config validation -----------------------------------------------

TEST(MachineConfigValidation, NamesTheBadField)
{
    setQuiet(true);
    {
        MachineConfig m = serverConfig();
        m.vpu.width = 0;
        try {
            m.validate();
            FAIL() << "expected fatal()";
        } catch (const FatalError &e) {
            EXPECT_NE(std::string(e.what()).find("vpu.width"),
                      std::string::npos);
        }
    }
    {
        MachineConfig m = serverConfig();
        m.mlc.assoc = 1;
        EXPECT_THROW(m.validate(), FatalError);
    }
    {
        MachineConfig m = serverConfig();
        m.faults.htbDropRate = -0.5;
        try {
            m.validate();
            FAIL() << "expected fatal()";
        } catch (const FatalError &e) {
            EXPECT_NE(std::string(e.what()).find("htbDropRate"),
                      std::string::npos);
        }
    }
    {
        MachineConfig m = serverConfig();
        m.powerChop.qos.referenceDecay = 0;
        try {
            m.validate();
            FAIL() << "expected fatal()";
        } catch (const FatalError &e) {
            EXPECT_NE(std::string(e.what()).find("referenceDecay"),
                      std::string::npos);
        }
    }
    setQuiet(false);
}

// --- environment parsing -----------------------------------------------------

TEST(Env, StringUnsetAndEmptyAreNullopt)
{
    {
        ScopedEnv env("POWERCHOP_TEST_VAR", nullptr);
        EXPECT_FALSE(envString("POWERCHOP_TEST_VAR").has_value());
    }
    {
        ScopedEnv env("POWERCHOP_TEST_VAR", "");
        EXPECT_FALSE(envString("POWERCHOP_TEST_VAR").has_value());
    }
    {
        ScopedEnv env("POWERCHOP_TEST_VAR", "hello");
        EXPECT_EQ(envString("POWERCHOP_TEST_VAR").value_or(""), "hello");
    }
}

TEST(Env, Uint64EnforcesRangeAndFormat)
{
    setQuiet(true);
    {
        ScopedEnv env("POWERCHOP_TEST_VAR", "17");
        EXPECT_EQ(envUint64("POWERCHOP_TEST_VAR", 1, 100).value_or(0),
                  17u);
        // Out of the caller's range -> rejected.
        EXPECT_FALSE(
            envUint64("POWERCHOP_TEST_VAR", 20, 100).has_value());
        EXPECT_FALSE(
            envUint64("POWERCHOP_TEST_VAR", 1, 10).has_value());
    }
    {
        ScopedEnv env("POWERCHOP_TEST_VAR", "+5");
        EXPECT_FALSE(
            envUint64("POWERCHOP_TEST_VAR", 1, 100).has_value());
    }
    {
        ScopedEnv env("POWERCHOP_TEST_VAR", "5x");
        EXPECT_FALSE(
            envUint64("POWERCHOP_TEST_VAR", 1, 100).has_value());
    }
    setQuiet(false);
}

TEST(Env, DoubleEnforcesRangeAndFiniteness)
{
    setQuiet(true);
    {
        ScopedEnv env("POWERCHOP_TEST_VAR", "0.25");
        EXPECT_EQ(envDouble("POWERCHOP_TEST_VAR", 0, 1).value_or(-1),
                  0.25);
        EXPECT_FALSE(
            envDouble("POWERCHOP_TEST_VAR", 0.5, 1).has_value());
    }
    {
        ScopedEnv env("POWERCHOP_TEST_VAR", "nan");
        EXPECT_FALSE(
            envDouble("POWERCHOP_TEST_VAR", 0, 1).has_value());
    }
    {
        ScopedEnv env("POWERCHOP_TEST_VAR", "0.5bad");
        EXPECT_FALSE(
            envDouble("POWERCHOP_TEST_VAR", 0, 1).has_value());
    }
    setQuiet(false);
}

// --- bit-identity guarantees -------------------------------------------------

TEST(FaultResilience, ZeroFaultRateIsBitIdenticalToBaseline)
{
    SimJob base;
    base.machine = serverConfig();
    base.workload = smallWorkload();
    base.opts.mode = SimMode::PowerChop;
    base.opts.maxInstructions = 150'000;

    // Injector compiled in but disabled...
    SimJob disabled = base;
    disabled.machine.faults = allFaultsAt(0.0);
    // ...and enabled with every rate at zero.
    SimJob armed_idle = base;
    armed_idle.machine.faults.enabled = true;

    const SimResult r_base =
        simulate(base.machine, base.workload, base.opts);
    const SimResult r_disabled =
        simulate(disabled.machine, disabled.workload, disabled.opts);
    const SimResult r_armed =
        simulate(armed_idle.machine, armed_idle.workload,
                 armed_idle.opts);

    expectIdentical(r_base, r_disabled);
    expectIdentical(r_base, r_armed);

    // Fault-free output carries no resilience fields at all.
    EXPECT_EQ(r_base.toJson().find("faults_injected"),
              std::string::npos);
    EXPECT_EQ(r_base.toJson().find("safe_mode"), std::string::npos);
}

TEST(FaultResilience, FaultedRunIsDeterministicAcrossWorkerCounts)
{
    std::vector<SimJob> jobs;
    for (unsigned seed = 1; seed <= 4; ++seed)
        jobs.push_back(faultedJob(0.01, seed));

    // Ground truth: direct serial simulate() calls.
    std::vector<SimResult> serial;
    for (const auto &job : jobs)
        serial.push_back(
            simulate(job.machine, job.workload, job.opts));

    SimJobRunner one(1);
    SimJobRunner four(4);
    const std::vector<SimResult> r1 = one.run(jobs);
    const std::vector<SimResult> r4 = four.run(jobs);

    std::uint64_t total_faults = 0;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        expectIdentical(serial[i], r1[i]);
        expectIdentical(serial[i], r4[i]);
        total_faults += serial[i].faults.total();
    }
    // The configuration actually injected faults; the runs agreeing
    // bit-for-bit above is therefore a statement about the faulted
    // path, not a vacuous pass.
    EXPECT_GT(total_faults, 0u);
}

TEST(FaultResilience, FaultedRunReportsInjections)
{
    const SimJob job = faultedJob(0.02);
    const SimResult res =
        simulate(job.machine, job.workload, job.opts);
    EXPECT_GT(res.faults.total(), 0u);
    EXPECT_NE(res.toJson().find("faults_injected"), std::string::npos);
}

// --- cooperative cancellation ------------------------------------------------

TEST(Cancellation, PreArmedFlagStopsTheRunEarly)
{
    SimJob job = faultedJob(0.0);
    std::atomic<bool> cancel{true};
    job.opts.cancelFlag = &cancel;
    EXPECT_THROW(
        simulate(job.machine, job.workload, job.opts),
        SimCancelledError);
}

TEST(Cancellation, NullFlagRunsToCompletion)
{
    SimJob job = faultedJob(0.0);
    const SimResult res =
        simulate(job.machine, job.workload, job.opts);
    EXPECT_EQ(res.instructions, job.opts.maxInstructions);
}

// --- robust batch runner -----------------------------------------------------

TEST(RobustRunner, HealthyBatchMatchesPlainRun)
{
    std::vector<SimJob> jobs = {faultedJob(0.0, 1),
                                faultedJob(0.01, 2)};
    SimJobRunner runner(2);
    const std::vector<SimResult> plain = runner.run(jobs);
    const RobustBatchResult robust = runner.runRobust(jobs);

    ASSERT_EQ(robust.results.size(), jobs.size());
    EXPECT_TRUE(robust.allOk());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(robust.outcomes[i].status, JobStatus::Ok);
        EXPECT_EQ(robust.outcomes[i].attempts, 1u);
        expectIdentical(plain[i], robust.results[i]);
    }
}

TEST(RobustRunner, FailedJobDoesNotPoisonTheBatch)
{
    setQuiet(true);
    SimJob good = faultedJob(0.0, 1);
    SimJob bad = good;
    bad.opts.maxInstructions = 0;  // simulate() rejects this

    SimJobRunner runner(2);
    const RobustBatchResult batch =
        runner.runRobust({good, bad, good});

    ASSERT_EQ(batch.outcomes.size(), 3u);
    EXPECT_EQ(batch.outcomes[0].status, JobStatus::Ok);
    EXPECT_EQ(batch.outcomes[1].status, JobStatus::Failed);
    EXPECT_EQ(batch.outcomes[2].status, JobStatus::Ok);
    EXPECT_FALSE(batch.outcomes[1].error.empty());

    EXPECT_EQ(batch.okCount(), 2u);
    EXPECT_EQ(batch.failedCount(), 1u);
    EXPECT_FALSE(batch.allOk());
    EXPECT_NE(batch.summary().find("2 ok"), std::string::npos);
    EXPECT_NE(batch.summary().find("1 failed"), std::string::npos);

    // The good jobs' results are intact and identical to serial runs.
    expectIdentical(batch.results[0],
                    simulate(good.machine, good.workload, good.opts));

    // The runner survives and its report saw the robust batch.
    EXPECT_EQ(runner.report().okJobs, 2u);
    EXPECT_EQ(runner.report().failedJobs, 1u);
    EXPECT_NE(runner.report().toJson("t").find("\"failed_jobs\":1"),
              std::string::npos);
    setQuiet(false);
}

TEST(RobustRunner, OverDeadlineJobTimesOut)
{
    SimJob slow = faultedJob(0.0);
    slow.opts.maxInstructions =
        std::numeric_limits<InsnCount>::max();

    RobustRunOptions opts;
    opts.timeoutSeconds = 0.1;

    SimJobRunner runner(2);
    const RobustBatchResult batch =
        runner.runRobust({faultedJob(0.0, 2), slow}, opts);

    EXPECT_EQ(batch.outcomes[0].status, JobStatus::Ok);
    EXPECT_EQ(batch.outcomes[1].status, JobStatus::TimedOut);
    EXPECT_NE(batch.outcomes[1].error.find("cancelled"),
              std::string::npos);
    EXPECT_EQ(batch.timedOutCount(), 1u);
    EXPECT_EQ(runner.report().timedOutJobs, 1u);
}

TEST(RobustRunner, TransientJobsAreRetriedPermanentOnesAreNot)
{
    setQuiet(true);
    SimJob bad = faultedJob(0.0);
    bad.opts.maxInstructions = 0;  // fails deterministically

    SimJob transient_bad = bad;
    transient_bad.transient = true;

    RobustRunOptions opts;
    opts.maxRetries = 2;

    SimJobRunner runner(2);
    const RobustBatchResult batch =
        runner.runRobust({bad, transient_bad}, opts);

    EXPECT_EQ(batch.outcomes[0].status, JobStatus::Failed);
    EXPECT_EQ(batch.outcomes[0].attempts, 1u);
    EXPECT_EQ(batch.outcomes[1].status, JobStatus::Failed);
    EXPECT_EQ(batch.outcomes[1].attempts, 3u);
    EXPECT_EQ(runner.report().retries, 2u);
    setQuiet(false);
}

TEST(RobustRunner, EmptyBatch)
{
    SimJobRunner runner(2);
    const RobustBatchResult batch = runner.runRobust({});
    EXPECT_TRUE(batch.results.empty());
    EXPECT_TRUE(batch.outcomes.empty());
    EXPECT_TRUE(batch.allOk());
}

TEST(RobustRunner, RobustFaultSweepDeterministicAcrossWorkers)
{
    std::vector<SimJob> jobs;
    for (unsigned seed = 1; seed <= 3; ++seed)
        jobs.push_back(faultedJob(0.01, seed));

    SimJobRunner one(1);
    SimJobRunner four(4);
    const RobustBatchResult a = one.runRobust(jobs);
    const RobustBatchResult b = four.runRobust(jobs);

    ASSERT_TRUE(a.allOk());
    ASSERT_TRUE(b.allOk());
    for (std::size_t i = 0; i < jobs.size(); ++i)
        expectIdentical(a.results[i], b.results[i]);
}

// --- report rendering --------------------------------------------------------

TEST(RunnerReport, RobustFieldsOnlyAppearAfterRobustBatches)
{
    SimJobRunner runner(2);
    runner.run({faultedJob(0.0)});
    // Plain batches leave the report's rendering unchanged.
    EXPECT_EQ(runner.report().toJson("t").find("ok_jobs"),
              std::string::npos);
    EXPECT_EQ(runner.report().toString().find("robust"),
              std::string::npos);

    runner.runRobust({faultedJob(0.0)});
    EXPECT_NE(runner.report().toJson("t").find("\"ok_jobs\":1"),
              std::string::npos);
    EXPECT_NE(runner.report().toString().find("robust"),
              std::string::npos);
}
