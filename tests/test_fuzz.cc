/**
 * @file
 * Randomized model-based tests: long random operation sequences
 * checked against invariants and reference models. Seeds are fixed,
 * so failures reproduce deterministically.
 */

#include <map>
#include <unordered_map>

#include <gtest/gtest.h>

#include "common/random.hh"
#include "core/pvt.hh"
#include "powerchop/powerchop.hh"

using namespace powerchop;

// --- cache fuzz: random accesses + way changes + drowses --------------------

class CacheFuzz : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CacheFuzz, InvariantsHoldUnderRandomOperations)
{
    Rng rng(GetParam() * 7919 + 13);
    CacheParams params{32 * 1024, 8, 64};
    SetAssocCache cache(params);
    const std::uint64_t capacity = params.sizeBytes / params.lineBytes;

    std::uint64_t expected_accesses = 0;
    for (int step = 0; step < 30'000; ++step) {
        double u = rng.uniform();
        if (u < 0.90) {
            Addr addr = 0x100000 + rng.below(2048) * 64;
            cache.access(addr, rng.bernoulli(0.3));
            ++expected_accesses;
        } else if (u < 0.95) {
            unsigned ways = 1u << rng.below(4);  // 1,2,4,8
            cache.setActiveWays(ways);
        } else if (u < 0.98) {
            cache.drowseAll();
        } else {
            cache.invalidateAll();
        }

        // Invariants after every operation.
        ASSERT_EQ(cache.hits() + cache.misses(), cache.accesses());
        ASSERT_EQ(cache.accesses(), expected_accesses);
        ASSERT_LE(cache.validLineCount(), capacity);
        ASSERT_LE(cache.awakeLineCount(), cache.validLineCount());
        ASSERT_GE(cache.activeWays(), 1u);
        ASSERT_LE(cache.activeWays(), params.assoc);
        // Valid lines never exceed the *active* capacity.
        ASSERT_LE(cache.validLineCount(),
                  static_cast<std::uint64_t>(cache.numSets()) *
                      cache.activeWays());
    }
    // Under a 2048-line hot set in a 512-line cache, both hits and
    // misses must have occurred.
    EXPECT_GT(cache.hits(), 0u);
    EXPECT_GT(cache.misses(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheFuzz, ::testing::Range(1u, 9u));

// --- PVT fuzz against a reference model ---------------------------------------

class PvtFuzz : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PvtFuzz, BehavesLikeABoundedMapWithEviction)
{
    Rng rng(GetParam() * 104729 + 7);
    Pvt pvt(PvtParams{8, 3});

    // Reference model: the authoritative signature -> policy mapping
    // of everything ever registered (PVT entries must never disagree,
    // only disappear).
    std::map<PhaseSignature, GatingPolicy, std::less<PhaseSignature>>
        truth;

    auto make_sig = [&](unsigned i) {
        TranslationId ids[] = {i * 16 + 1, i * 16 + 2, i * 16 + 3,
                               i * 16 + 4};
        return PhaseSignature(ids, 4);
    };

    std::uint64_t resident_hits = 0;
    for (int step = 0; step < 20'000; ++step) {
        unsigned which = static_cast<unsigned>(rng.below(24));
        PhaseSignature sig = make_sig(which);

        if (rng.bernoulli(0.4)) {
            GatingPolicy pol = GatingPolicy::decode(
                static_cast<std::uint8_t>(rng.below(16)));
            auto evicted = pvt.registerPolicy(sig, pol);
            truth[sig] = pol;
            if (evicted) {
                // Evicted entries must carry the policy they held.
                auto it = truth.find(evicted->signature);
                ASSERT_NE(it, truth.end());
                ASSERT_EQ(it->second, evicted->policy);
                ASSERT_NE(evicted->signature, sig);
            }
            ASSERT_TRUE(pvt.contains(sig));
        } else {
            auto hit = pvt.lookup(sig);
            if (hit) {
                ++resident_hits;
                auto it = truth.find(sig);
                ASSERT_NE(it, truth.end());
                ASSERT_EQ(*hit, it->second);
            }
        }
        ASSERT_LE(pvt.occupancy(), 8u);
        ASSERT_EQ(pvt.hits() + pvt.misses(), pvt.lookups());
    }
    EXPECT_GT(resident_hits, 100u);
    EXPECT_GT(pvt.evictions(), 10u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PvtFuzz, ::testing::Range(1u, 7u));

// --- generator mix conformance over all suite models ---------------------------

class MixConformance : public ::testing::TestWithParam<int>
{
};

TEST_P(MixConformance, RealizedDynamicMixTracksSpec)
{
    auto all = allWorkloads();
    const WorkloadSpec &spec = all[GetParam()];

    // Schedule-weighted target fractions over one full loop.
    double target_simd = 0, target_branch = 0, target_mem = 0;
    InsnCount total = 0;
    for (const auto &e : spec.schedule) {
        const PhaseSpec &p = spec.phases[e.phase];
        target_simd += p.simdFrac * e.insns;
        target_branch += p.branchFrac * e.insns;
        target_mem += p.memFrac * e.insns;
        total += e.insns;
    }
    target_simd /= total;
    target_branch /= total;
    target_mem /= total;

    WorkloadGenerator gen(spec);
    InsnCount n = spec.scheduleLength();
    std::uint64_t simd = 0, branch = 0, mem = 0;
    for (InsnCount i = 0; i < n; ++i) {
        const DynInst &di = gen.next();
        switch (di.op()) {
          case OpClass::SimdOp:
            ++simd;
            break;
          case OpClass::Branch:
            if (!di.isTerminator)
                ++branch;
            break;
          case OpClass::Load:
          case OpClass::Store:
            ++mem;
            break;
          default:
            break;
        }
    }

    // The weighted-quota placement should land within a modest
    // relative tolerance of the spec (plus a small absolute floor for
    // the near-zero rates).
    auto close = [&](double realized, double target, const char *what) {
        double tol = std::max(0.25 * target, 0.002);
        EXPECT_NEAR(realized, target, tol)
            << spec.name << " " << what;
    };
    close(double(simd) / n, target_simd, "simd");
    close(double(branch) / n, target_branch, "branch");
    close(double(mem) / n, target_mem, "mem");
}

INSTANTIATE_TEST_SUITE_P(AllApps, MixConformance,
                         ::testing::Range(0, 29));

// --- end-to-end mode sweep over all apps ----------------------------------------

class ModeSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(ModeSweep, RunsCleanlyWithCoherentStats)
{
    auto [app_idx, mode_idx] = GetParam();
    auto all = allWorkloads();
    const WorkloadSpec &w = all[app_idx];
    const SimMode mode = static_cast<SimMode>(mode_idx);

    MachineConfig m = w.suite == Suite::MobileBench ? mobileConfig()
                                                    : serverConfig();
    SimOptions opts;
    opts.mode = mode;
    opts.maxInstructions = 300'000;
    SimResult r = simulate(m, w, opts);

    ASSERT_EQ(r.instructions, 300'000u);
    ASSERT_GT(r.ipc(), 0.0);
    ASSERT_LE(r.ipc(), m.core.issueWidth);
    ASSERT_GE(r.vpuGatedFraction, 0.0);
    ASSERT_LE(r.vpuGatedFraction, 1.0);
    ASSERT_LE(r.mlcHalfFraction + r.mlcQuarterFraction +
                  r.mlcOneWayFraction,
              1.0 + 1e-9);
    ASSERT_GT(r.energy.totalEnergy(), 0.0);
    ASSERT_GE(r.energy.leakageEnergy(), 0.0);
    ASSERT_EQ(r.pvtHits + (r.pvtLookups - r.pvtHits), r.pvtLookups);
    if (mode != SimMode::PowerChop) {
        ASSERT_EQ(r.pvtLookups, 0u);
        ASSERT_EQ(r.translationsExecuted, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AppsByMode, ModeSweep,
    ::testing::Combine(
        ::testing::Values(0, 4, 9, 11, 12, 17, 20, 23, 28),
        ::testing::Range(0, 4)));
