/**
 * @file
 * Tests for the structure-of-arrays hot loop: burst-boundary edges
 * the batch rewrite is most likely to break (budget clamps mid-block,
 * sampleInterval == 1, trace side-exits around a clamp, every
 * SimMode), bounded in-burst cancellation latency, the per-job arena
 * allocator, the shared translation-metadata cache, and the JSON
 * trajectory sink the perf numbers are recorded through.
 */

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/arena.hh"
#include "common/atomic_file.hh"
#include "sim/experiment.hh"
#include "sim/sim_runner.hh"
#include "sim/simulator.hh"
#include "verify/golden.hh"
#include "verify/reference_simulator.hh"
#include "workload/suites.hh"

using namespace powerchop;

namespace
{

/** Small two-phase workload exercising every slot kind. */
WorkloadSpec
mixedWorkload(unsigned seed = 11)
{
    WorkloadSpec w;
    w.name = "hotloop-" + std::to_string(seed);
    w.seed = seed;
    PhaseSpec compute;
    compute.name = "compute";
    compute.simdFrac = 0.08;
    compute.branchFrac = 0.07;
    PhaseSpec memory;
    memory.name = "memory";
    memory.memFrac = 0.34;
    memory.mem.workingSetBytes = 512 * 1024;
    memory.mem.hotRegionFrac = 0.7;
    memory.mem.randomFrac = 0.4;
    w.phases = {compute, memory};
    w.schedule = {{0, 50'000}, {1, 70'000}};
    return w;
}

/** A workload whose blocks dwarf the in-burst cancel poll period. */
WorkloadSpec
giantBlockWorkload()
{
    WorkloadSpec w;
    w.name = "giant-block";
    w.seed = 3;
    PhaseSpec p;
    p.name = "huge";
    // Body lengths are normal(avg, avg/4) built from three uniforms,
    // so lengths stay within avg +- 0.75 avg: every block is at least
    // 200K instructions, more than three cancel poll periods.
    p.avgBlockLen = 800'000;
    p.memFrac = 0.2;
    p.branchFrac = 0.02;
    w.phases = {p};
    w.schedule = {{0, 10'000'000}};
    return w;
}

const SimMode kAllModes[] = {SimMode::FullPower, SimMode::PowerChop,
                             SimMode::MinPower, SimMode::TimeoutVpu};

/** Bit-exact differential between simulate() and the reference. */
void
expectBitIdentical(const MachineConfig &machine, const WorkloadSpec &w,
                   const SimOptions &opts, const std::string &what)
{
    SimResult fast = simulate(machine, w, opts);
    SimResult ref = verify::referenceSimulate(machine, w, opts);
    auto mismatches = verify::compareResults(fast, ref, 0.0);
    EXPECT_TRUE(mismatches.empty())
        << what << ": " << mismatches.size() << " mismatching fields, "
        << "first: " << mismatches.front().key << " ("
        << mismatches.front().detail << ")";
}

TEST(BurstBoundary, BudgetClampsMidBlockEveryMode)
{
    // Budgets chosen to land inside block bodies (blocks average 14
    // instructions, so any budget not a multiple of the dynamic block
    // lengths clamps a burst mid-block), including the degenerate 1-
    // and near-burst-period cases.
    const InsnCount budgets[] = {1, 7, 997, 65'535, 65'537, 100'003};
    const WorkloadSpec w = mixedWorkload();
    for (SimMode mode : kAllModes) {
        for (InsnCount budget : budgets) {
            SimOptions opts;
            opts.mode = mode;
            opts.maxInstructions = budget;
            expectBitIdentical(serverConfig(), w, opts,
                               "mode " +
                                   std::to_string(static_cast<int>(
                                       mode)) +
                                   " budget " + std::to_string(budget));
        }
    }
}

TEST(BurstBoundary, SampleIntervalOne)
{
    // sampleInterval == 1 forces the sampler countdown to expire on
    // every single instruction — the burst splitter's worst case. The
    // streams must match the reference sample for sample.
    const WorkloadSpec w = mixedWorkload(7);
    for (SimMode mode : {SimMode::FullPower, SimMode::PowerChop}) {
        std::vector<std::pair<InsnCount, Cycles>> fast_samples;
        std::vector<std::pair<InsnCount, Cycles>> ref_samples;

        SimOptions opts;
        opts.mode = mode;
        opts.maxInstructions = 30'011;  // prime: ends mid-block
        opts.sampleInterval = 1;
        opts.sampler = [&](InsnCount n, Cycles c) {
            fast_samples.emplace_back(n, c);
        };
        SimResult fast = simulate(serverConfig(), w, opts);

        opts.sampler = [&](InsnCount n, Cycles c) {
            ref_samples.emplace_back(n, c);
        };
        SimResult ref =
            verify::referenceSimulate(serverConfig(), w, opts);

        EXPECT_TRUE(verify::compareResults(fast, ref, 0.0).empty());
        ASSERT_EQ(fast_samples.size(), ref_samples.size());
        ASSERT_EQ(fast_samples.size(), opts.maxInstructions);
        EXPECT_EQ(fast_samples, ref_samples);
    }
}

TEST(BurstBoundary, SamplerPeriodStraddlesBlocks)
{
    // A sample period that is coprime to typical block lengths fires
    // at every possible offset within a burst.
    const WorkloadSpec w = mixedWorkload(13);
    SimOptions opts;
    opts.mode = SimMode::PowerChop;
    opts.maxInstructions = 120'000;
    opts.sampleInterval = 17;
    std::vector<std::pair<InsnCount, Cycles>> fast_samples;
    std::vector<std::pair<InsnCount, Cycles>> ref_samples;
    opts.sampler = [&](InsnCount n, Cycles c) {
        fast_samples.emplace_back(n, c);
    };
    SimResult fast = simulate(mobileConfig(), w, opts);
    opts.sampler = [&](InsnCount n, Cycles c) {
        ref_samples.emplace_back(n, c);
    };
    SimResult ref = verify::referenceSimulate(mobileConfig(), w, opts);
    EXPECT_TRUE(verify::compareResults(fast, ref, 0.0).empty());
    EXPECT_EQ(fast_samples, ref_samples);
}

TEST(BurstBoundary, TraceSideExitNearClamp)
{
    // Clamp the run right around region-trace boundaries: with
    // budgets swept across a window the final burst ends mid-trace,
    // immediately after a side-exit, or exactly on a head, in some
    // run of this sweep. Suite workloads get hot multi-block traces.
    const WorkloadSpec w = findWorkload("gobmk");
    for (InsnCount budget = 80'000; budget < 80'040; ++budget) {
        SimOptions opts;
        opts.mode = SimMode::PowerChop;
        opts.maxInstructions = budget;
        expectBitIdentical(serverConfig(), w, opts,
                           "budget " + std::to_string(budget));
    }
}

TEST(Cancellation, InBurstPollBoundsLatency)
{
    // A block hundreds of thousands of instructions long must not
    // defer a cancel to its end: the burst re-checks the flag every
    // ~64K instructions.
    const WorkloadSpec w = giantBlockWorkload();
    std::atomic<bool> cancel{false};
    constexpr InsnCount trigger_at = 50'000;

    SimOptions opts;
    opts.mode = SimMode::FullPower;
    opts.maxInstructions = 10'000'000;
    opts.cancelFlag = &cancel;
    opts.sampleInterval = trigger_at;
    opts.sampler = [&](InsnCount n, Cycles) {
        if (n >= trigger_at)
            cancel.store(true, std::memory_order_relaxed);
    };

    try {
        simulate(serverConfig(), w, opts);
        FAIL() << "simulate() completed despite the cancel flag";
    } catch (const SimCancelledError &e) {
        // "... cancelled after N of M instructions"
        const std::string msg = e.what();
        const auto pos = msg.find("after ");
        ASSERT_NE(pos, std::string::npos) << msg;
        const InsnCount done =
            std::strtoull(msg.c_str() + pos + 6, nullptr, 10);
        // Thrown after the flag went up...
        EXPECT_GE(done, trigger_at) << msg;
        // ...within one poll period (64K) plus slack — far inside the
        // first giant block, so the poll demonstrably ran mid-burst.
        EXPECT_LE(done, trigger_at + 2 * 64 * 1024) << msg;
    }
}

TEST(Arena, AlignmentAndGrowth)
{
    Arena arena(256);  // tiny chunks force growth

    auto *a = static_cast<char *>(arena.allocate(3, 1));
    auto *b = arena.allocateArray<std::uint64_t>(4);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % alignof(std::uint64_t),
              0u);
    a[0] = 'x';
    b[3] = 42;

    // Oversized request: larger than the chunk size still succeeds.
    auto *big = arena.allocateArray<std::uint32_t>(1024);
    for (std::size_t i = 0; i < 1024; ++i)
        big[i] = static_cast<std::uint32_t>(i);
    EXPECT_EQ(big[1023], 1023u);

    EXPECT_GE(arena.bytesAllocated(), 3 + 4 * 8 + 1024 * 4);
    EXPECT_GE(arena.bytesReserved(), arena.bytesAllocated());
}

TEST(Arena, CopyArrayAndReset)
{
    Arena arena;
    const std::uint16_t src[] = {1, 2, 3, 5, 8};
    std::uint16_t *copy = arena.copyArray(src, 5);
    EXPECT_NE(copy, src);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(copy[i], src[i]);

    const std::size_t reserved = arena.bytesReserved();
    arena.reset();
    EXPECT_EQ(arena.bytesAllocated(), 0u);
    // Chunks are recycled, not returned.
    EXPECT_EQ(arena.bytesReserved(), reserved);
    auto *again = arena.allocateArray<std::uint16_t>(5);
    again[0] = 9;
    EXPECT_EQ(arena.bytesReserved(), reserved);
}

TEST(TranslationCache, HitsAcrossSameWorkloadJobs)
{
    // Four jobs of the same workload in one batch: the first derives
    // the metadata, the rest must hit the shared cache — with results
    // bit-identical to an uncached standalone run.
    const WorkloadSpec w = mixedWorkload(21);
    SimOptions base;
    base.mode = SimMode::PowerChop;
    base.maxInstructions = 60'000;

    std::vector<SimJob> jobs(4);
    for (auto &j : jobs) {
        j.machine = serverConfig();
        j.workload = w;
        j.opts = base;
    }

    SimJobRunner runner(2);
    std::vector<SimResult> batch = runner.run(jobs);

    const RunnerReport &rep = runner.report();
    EXPECT_GE(rep.translationCacheHits, 3u);
    EXPECT_GE(rep.translationCacheMisses, 1u);

    SimResult standalone = simulate(serverConfig(), w, base);
    for (const auto &r : batch)
        EXPECT_TRUE(verify::compareResults(r, standalone, 0.0).empty());
}

TEST(TranslationCache, WorkerCountIndependent)
{
    // The cache must not perturb results at any worker count.
    const WorkloadSpec apps[] = {mixedWorkload(31), mixedWorkload(32)};
    std::vector<SimJob> jobs;
    for (const auto &w : apps) {
        for (SimMode mode : kAllModes) {
            SimJob j;
            j.machine = mobileConfig();
            j.workload = w;
            j.opts.mode = mode;
            j.opts.maxInstructions = 50'000;
            jobs.push_back(std::move(j));
        }
    }

    SimJobRunner serial(1);
    SimJobRunner parallel(3);
    std::vector<SimResult> a = serial.run(jobs);
    std::vector<SimResult> b = parallel.run(jobs);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_TRUE(verify::compareResults(a[i], b[i], 0.0).empty())
            << "job " << i;
}

/** Temp file removed on scope exit. */
class ScopedPath
{
  public:
    explicit ScopedPath(const std::string &p) : path_(p)
    {
        std::remove(path_.c_str());
    }
    ~ScopedPath() { std::remove(path_.c_str()); }
    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

std::string
slurp(const std::string &path)
{
    std::string out;
    if (std::FILE *f = std::fopen(path.c_str(), "rb")) {
        char buf[512];
        std::size_t n;
        while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
            out.append(buf, n);
        std::fclose(f);
    }
    return out;
}

TEST(Trajectory, AppendCreatesAndGrowsArray)
{
    ScopedPath p("hotloop_traj_test.json");

    ASSERT_TRUE(appendJsonArrayEntryOk(p.str(), "{\"mips\":34.0}"));
    EXPECT_EQ(slurp(p.str()), "[\n{\"mips\":34.0}\n]\n");

    ASSERT_TRUE(appendJsonArrayEntryOk(p.str(), "{\"mips\":85.0}"));
    EXPECT_EQ(slurp(p.str()),
              "[\n{\"mips\":34.0},\n{\"mips\":85.0}\n]\n");
}

TEST(Trajectory, LegacySingleObjectIsWrappedNotClobbered)
{
    ScopedPath p("hotloop_traj_legacy.json");
    ASSERT_TRUE(
        atomicWriteFileOk(p.str(), "{\"bench\":\"old\",\"mips\":30}\n"));

    ASSERT_TRUE(appendJsonArrayEntryOk(p.str(), "{\"mips\":85.0}"));
    EXPECT_EQ(slurp(p.str()),
              "[\n{\"bench\":\"old\",\"mips\":30},\n{\"mips\":85.0}\n]\n");
}

TEST(Trajectory, RefusesGarbageFile)
{
    ScopedPath p("hotloop_traj_bad.json");
    ASSERT_TRUE(atomicWriteFileOk(p.str(), "not json at all"));
    EXPECT_FALSE(appendJsonArrayEntryOk(p.str(), "{}"));
    // The garbage file is left untouched for inspection.
    EXPECT_EQ(slurp(p.str()), "not json at all");
}

} // namespace
