/**
 * @file
 * Integration tests: end-to-end runs on the real suite models,
 * asserting the qualitative shapes the paper reports. These use
 * reduced instruction budgets so the whole file stays fast; the full
 * evaluation lives in bench/.
 */

#include <map>

#include <gtest/gtest.h>

#include "powerchop/powerchop.hh"

using namespace powerchop;

namespace
{

constexpr InsnCount testInsns = 4'000'000;

SimResult
runApp(const std::string &name, SimMode mode,
       InsnCount insns = testInsns)
{
    WorkloadSpec w = findWorkload(name);
    MachineConfig m = w.suite == Suite::MobileBench ? mobileConfig()
                                                    : serverConfig();
    SimOptions opts;
    opts.mode = mode;
    opts.maxInstructions = insns;
    return simulate(m, w, opts);
}

} // namespace

TEST(Integration, PowerChopSlowdownIsSmall)
{
    // The paper's headline: about 2% average slowdown. Allow headroom
    // per app at the reduced budget.
    for (const char *app : {"gems", "lbm", "namd", "hmmer", "msn"}) {
        SimResult full = runApp(app, SimMode::FullPower);
        SimResult pc = runApp(app, SimMode::PowerChop);
        EXPECT_LT(pc.slowdownVs(full), 0.06) << app;
    }
}

TEST(Integration, MinPowerLosesSubstantially)
{
    // Memory-bound apps crater without the MLC (Figure 12).
    for (const char *app : {"gems", "h264", "gobmk"}) {
        SimResult full = runApp(app, SimMode::FullPower);
        SimResult min = runApp(app, SimMode::MinPower);
        EXPECT_GT(min.slowdownVs(full), 0.40) << app;
    }
}

TEST(Integration, PowerChopReducesPowerAndLeakage)
{
    for (const char *app : {"lbm", "libquantum", "msn"}) {
        SimResult full = runApp(app, SimMode::FullPower);
        SimResult pc = runApp(app, SimMode::PowerChop);
        EXPECT_GT(pc.powerReductionVs(full), 0.03) << app;
        EXPECT_GT(pc.leakageReductionVs(full), 0.08) << app;
        EXPECT_GT(pc.energyReductionVs(full), 0.0) << app;
    }
}

TEST(Integration, VpuGatedHeavilyOnIntegerCode)
{
    // Figure 10: the VPU is gated ~90% on most SPEC-INT apps.
    SimResult pc = runApp("hmmer", SimMode::PowerChop);
    EXPECT_GT(pc.vpuGatedFraction, 0.8);
}

TEST(Integration, VpuStaysOnForVectorHeavyCode)
{
    // milc's SU(3) kernels keep the VPU critical.
    SimResult pc = runApp("milc", SimMode::PowerChop);
    EXPECT_LT(pc.vpuGatedFraction, 0.4);
}

TEST(Integration, BpuStaysOnForHardBranches)
{
    // sjeng's search is the BPU-critical archetype.
    SimResult pc = runApp("sjeng", SimMode::PowerChop);
    EXPECT_LT(pc.bpuGatedFraction, 0.3);
}

TEST(Integration, BpuGatedOnEasyBranches)
{
    SimResult pc = runApp("lbm", SimMode::PowerChop);
    EXPECT_GT(pc.bpuGatedFraction, 0.7);
}

TEST(Integration, MlcWayGatedOnStreaming)
{
    // Figure 10: streaming apps sit at one way much of the time.
    SimResult pc = runApp("libquantum", SimMode::PowerChop);
    EXPECT_GT(pc.mlcOneWayFraction, 0.5);
}

TEST(Integration, MlcKeptForCacheResidentPhases)
{
    SimResult pc = runApp("gems", SimMode::PowerChop);
    double full_frac =
        1.0 - pc.mlcHalfFraction - pc.mlcOneWayFraction;
    // The field-update phase (more than half the schedule) needs all
    // ways.
    EXPECT_GT(full_frac, 0.35);
}

TEST(Integration, PolicyChangeFrequenciesMatchFigure11)
{
    // Figure 11: BPU < 50, VPU < 10, MLC < 5 switches per Mcycle.
    for (const char *app : {"gobmk", "gems", "msn"}) {
        SimResult pc = runApp(app, SimMode::PowerChop);
        EXPECT_LT(pc.bpuSwitchesPerMcycle, 50.0) << app;
        EXPECT_LT(pc.vpuSwitchesPerMcycle, 10.0) << app;
        EXPECT_LT(pc.mlcSwitchesPerMcycle, 5.0) << app;
    }
}

TEST(Integration, PvtMissesAreRare)
{
    // Section IV-C3: ~0.017% of translations miss the PVT.
    SimResult pc = runApp("perlbench", SimMode::PowerChop);
    EXPECT_LT(pc.pvtMissPerTranslation, 0.002);
    EXPECT_GT(pc.pvtLookups, 100u);
}

TEST(Integration, PowerChopGatesVpuWhereTimeoutCannot)
{
    // Figure 16's namd case: sparse uniform vector ops starve the
    // timeout but PowerChop's phase criticality sees through them.
    // Needs a longer run than the other tests so per-signature
    // profiling amortizes.
    SimResult pc = runApp("namd", SimMode::PowerChop, 8'000'000);
    SimResult to = runApp("namd", SimMode::TimeoutVpu, 8'000'000);
    EXPECT_GT(pc.vpuGatedFraction, 0.75);
    EXPECT_LT(to.vpuGatedFraction, 0.25);
}

TEST(Integration, TimeoutCompetitiveWhenVectorsAreBursty)
{
    // Apps with long vector-free stretches let the timeout catch up.
    SimResult to = runApp("hmmer", SimMode::TimeoutVpu);
    EXPECT_GT(to.vpuGatedFraction, 0.8);
}

TEST(Integration, PhaseSignaturesAreStable)
{
    // Figure 8's quality metric: windows sharing a signature execute
    // nearly identical translation sets (avg Manhattan distance 2.8%,
    // never above 6.8%).
    WorkloadSpec w = findWorkload("gobmk");
    MachineConfig m = serverConfig();

    std::map<PhaseSignature,
             std::vector<std::map<TranslationId, double>>,
             std::less<PhaseSignature>>
        windows;

    SimOptions opts;
    opts.mode = SimMode::PowerChop;
    opts.maxInstructions = testInsns;
    opts.windowObserver = [&](const WindowReport &rep) {
        auto &list = windows[rep.signature];
        if (list.size() >= 6)
            return;
        std::map<TranslationId, double> counts;
        for (const auto &[id, insns] : rep.profile)
            counts[id] = static_cast<double>(insns);
        list.push_back(std::move(counts));
    };
    simulate(m, w, opts);

    double total_dist = 0;
    int pairs = 0;
    for (const auto &[sig, list] : windows) {
        for (std::size_t i = 0; i < list.size(); ++i) {
            for (std::size_t j = i + 1; j < list.size(); ++j) {
                // Normalized Manhattan distance over instruction
                // profiles.
                double dist = 0, mass = 0;
                auto it_a = list[i].begin();
                auto it_b = list[j].begin();
                std::map<TranslationId, double> merged = list[i];
                for (const auto &[id, c] : list[j]) {
                    auto f = merged.find(id);
                    if (f == merged.end())
                        merged[id] = -c;
                    else
                        f->second -= c;
                }
                for (const auto &[id, c] : merged)
                    dist += std::abs(c);
                for (const auto &[id, c] : list[i])
                    mass += c;
                for (const auto &[id, c] : list[j])
                    mass += c;
                (void)it_a;
                (void)it_b;
                total_dist += dist / mass;
                ++pairs;
            }
        }
    }
    ASSERT_GT(pairs, 0);
    EXPECT_LT(total_dist / pairs, 0.15);
}

TEST(Integration, MobileSavesMoreLeakageThanServer)
{
    // Table I: the mobile MLC is 60% of core area vs 35%, so mobile
    // leakage reductions are larger (Figure 14) for comparable
    // workloads that keep their MLC-critical phases powered.
    SimResult mfull = runApp("google", SimMode::FullPower);
    SimResult mpc = runApp("google", SimMode::PowerChop);
    SimResult sfull = runApp("gobmk", SimMode::FullPower);
    SimResult spc = runApp("gobmk", SimMode::PowerChop);
    EXPECT_GT(mpc.leakageReductionVs(mfull),
              spc.leakageReductionVs(sfull));
}

TEST(Integration, EnergyReductionTracksPowerReductionMinusSlowdown)
{
    SimResult full = runApp("lbm", SimMode::FullPower);
    SimResult pc = runApp("lbm", SimMode::PowerChop);
    // Energy reduction is slightly below power reduction because of
    // the (small) slowdown (Section V-D).
    EXPECT_LE(pc.energyReductionVs(full),
              pc.powerReductionVs(full) + 0.01);
}
