/**
 * @file
 * Unit tests for the guest ISA: instructions, basic blocks, programs.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "isa/program.hh"

using namespace powerchop;

TEST(Instruction, OpClassNames)
{
    EXPECT_STREQ(opClassName(OpClass::IntAlu), "IntAlu");
    EXPECT_STREQ(opClassName(OpClass::SimdOp), "SimdOp");
    EXPECT_STREQ(opClassName(OpClass::Branch), "Branch");
}

TEST(Instruction, Predicates)
{
    StaticInst ld{0x1000, OpClass::Load};
    StaticInst st{0x1004, OpClass::Store};
    StaticInst br{0x1008, OpClass::Branch};
    StaticInst v{0x100c, OpClass::SimdOp};
    EXPECT_TRUE(ld.isMemRef());
    EXPECT_TRUE(st.isMemRef());
    EXPECT_FALSE(br.isMemRef());
    EXPECT_TRUE(br.isBranch());
    EXPECT_TRUE(v.isSimd());
    EXPECT_FALSE(v.isBranch());
}

TEST(Instruction, ToStringMentionsClassAndPc)
{
    StaticInst si{0xdead0, OpClass::Load};
    std::string s = toString(si);
    EXPECT_NE(s.find("Load"), std::string::npos);
    EXPECT_NE(s.find("dead0"), std::string::npos);
}

TEST(Program, AddBlockAppendsTerminator)
{
    Program p;
    BlockId b = p.addBlock(0x1000, {OpClass::IntAlu, OpClass::Load});
    const BasicBlock &bb = p.block(b);
    EXPECT_EQ(bb.size(), 3u);
    EXPECT_TRUE(bb.terminator().isBranch());
    EXPECT_EQ(bb.insts[0].pc, 0x1000u);
    EXPECT_EQ(bb.insts[1].pc, 0x1004u);
    EXPECT_EQ(bb.fallthroughAddr(), 0x1000u + 3 * guestInsnBytes);
}

TEST(Program, CachesInstructionClassCounts)
{
    Program p;
    BlockId b = p.addBlock(
        0x2000, {OpClass::SimdOp, OpClass::Load, OpClass::Store,
                 OpClass::SimdOp});
    EXPECT_EQ(p.block(b).simdCount, 2u);
    EXPECT_EQ(p.block(b).memCount, 2u);
}

TEST(Program, RejectsBadHeads)
{
    Program p;
    EXPECT_THROW(p.addBlock(0, {OpClass::IntAlu}), PanicError);
    EXPECT_THROW(p.addBlock(0x1001, {OpClass::IntAlu}), PanicError);
    p.addBlock(0x1000, {OpClass::IntAlu});
    EXPECT_THROW(p.addBlock(0x1000, {OpClass::IntAlu}), PanicError);
}

TEST(Program, RejectsExplicitBranchInBody)
{
    Program p;
    EXPECT_THROW(p.addBlock(0x1000, {OpClass::Branch}), PanicError);
}

TEST(Program, SuccessorsAndEntry)
{
    Program p;
    BlockId a = p.addBlock(0x1000, {OpClass::IntAlu});
    BlockId b = p.addBlock(0x2000, {OpClass::IntAlu});
    p.setSuccessors(a, b, a);
    EXPECT_EQ(p.block(a).takenSucc, b);
    EXPECT_EQ(p.block(a).fallthroughSucc, a);
    EXPECT_EQ(p.entry(), a);
    p.setEntry(b);
    EXPECT_EQ(p.entry(), b);
    EXPECT_THROW(p.setEntry(99), PanicError);
    EXPECT_THROW(p.setSuccessors(a, 99, b), PanicError);
}

TEST(Program, FindByHead)
{
    Program p;
    BlockId a = p.addBlock(0x1000, {OpClass::IntAlu});
    EXPECT_EQ(p.findByHead(0x1000), a);
    EXPECT_EQ(p.findByHead(0x9999000), invalidBlockId);
}

TEST(Program, NumStaticInsts)
{
    Program p;
    p.addBlock(0x1000, {OpClass::IntAlu, OpClass::IntAlu});
    p.addBlock(0x2000, {OpClass::Load});
    // 2+1 bodies plus 2 terminators.
    EXPECT_EQ(p.numStaticInsts(), 5u);
}

TEST(Program, BlockIndexOutOfRangePanics)
{
    Program p;
    p.addBlock(0x1000, {OpClass::IntAlu});
    EXPECT_THROW(p.block(5), PanicError);
}
