/**
 * @file
 * Adversarial-input tests for the JSON reader. The parser fronts
 * every external document the tooling consumes — status snapshots,
 * cache/campaign journals, powerchopd SIM specs off the socket — so
 * hostile and corrupt shapes must fail closed (clean parse error or
 * typed-accessor fallback), never recurse unboundedly, read out of
 * bounds, or invoke undefined casts.
 */

#include <cmath>
#include <string>
#include <gtest/gtest.h>

#include "common/json.hh"

using namespace powerchop;

namespace
{

std::string
nested(unsigned depth)
{
    std::string doc(depth, '[');
    doc += "1";
    doc.append(depth, ']');
    return doc;
}

// ---------------------------------------------------------------------
// Nesting depth
// ---------------------------------------------------------------------

TEST(JsonAdversarial, DeepButReasonableNestingParses)
{
    json::Value v;
    ASSERT_TRUE(json::parse(nested(60), v));
    // Walk back down to the scalar to prove the structure is real.
    const json::Value *cur = &v;
    for (unsigned i = 0; i < 60; ++i) {
        ASSERT_TRUE(cur->isArray());
        ASSERT_EQ(cur->elements().size(), 1u);
        cur = &cur->elements()[0];
    }
    EXPECT_DOUBLE_EQ(cur->asDouble(), 1.0);
}

TEST(JsonAdversarial, ExcessiveNestingIsRejectedNotRecursed)
{
    // The depth cap (64) rejects the document with a diagnostic;
    // without it a hostile input of brackets is a stack-overflow
    // primitive against the recursive-descent parser.
    json::Value v;
    std::string err;
    EXPECT_FALSE(json::parse(nested(100), v, &err));
    EXPECT_NE(err.find("nesting"), std::string::npos) << err;
    EXPECT_FALSE(json::parse(nested(100'000), v));

    // Mixed object/array nesting counts against the same budget.
    std::string mixed;
    for (unsigned i = 0; i < 50; ++i)
        mixed += "{\"k\":[";
    mixed += "0";
    for (unsigned i = 0; i < 50; ++i)
        mixed += "]}";
    EXPECT_FALSE(json::parse(mixed, v));
}

// ---------------------------------------------------------------------
// Duplicate keys
// ---------------------------------------------------------------------

TEST(JsonAdversarial, DuplicateKeysKeepFirstOnLookup)
{
    // Duplicate keys are legal per RFC 8259 ("should" be unique);
    // find() resolves to the first occurrence, deterministically, so
    // a crafted document can't shadow an already-validated field.
    json::Value v;
    ASSERT_TRUE(json::parse(
        "{\"a\":1,\"a\":2,\"b\":\"x\",\"a\":3}", v));
    EXPECT_DOUBLE_EQ(v.getDouble("a"), 1.0);
    EXPECT_EQ(v.members().size(), 4u) << "nothing silently dropped";
}

// ---------------------------------------------------------------------
// Number overflow
// ---------------------------------------------------------------------

TEST(JsonAdversarial, OverflowedLiteralsNeverReachAnUndefinedCast)
{
    // strtod turns 1e999 into +Inf; the double accessor passes that
    // through, but the uint64 accessor must fall back: casting a
    // double >= 2^64 (Inf included) to uint64_t is UB, and GET keys
    // arrive over the wire through exactly this path.
    json::Value v;
    ASSERT_TRUE(json::parse("{\"n\":1e999,\"m\":-1e999}", v));
    EXPECT_TRUE(std::isinf(v.getDouble("n")));
    EXPECT_EQ(v.getUint64("n", 7), 7u);
    EXPECT_EQ(v.getUint64("m", 7), 7u);

    // 1.9e19 is above 2^64 (~1.845e19): fallback, not wraparound.
    ASSERT_TRUE(json::parse("{\"n\":19000000000000000000}", v));
    EXPECT_EQ(v.getUint64("n", 7), 7u);

    // The largest double strictly below 2^64 still converts.
    ASSERT_TRUE(json::parse("{\"n\":18446744073709549568}", v));
    EXPECT_EQ(v.getUint64("n"), 18446744073709549568ull);

    // Negatives and non-numbers fall back too.
    ASSERT_TRUE(json::parse("{\"n\":-1,\"s\":\"12\"}", v));
    EXPECT_EQ(v.getUint64("n", 7), 7u);
    EXPECT_EQ(v.getUint64("s", 7), 7u);
}

// ---------------------------------------------------------------------
// Broken strings and escapes
// ---------------------------------------------------------------------

TEST(JsonAdversarial, TruncatedUnicodeEscapesAreRejected)
{
    json::Value v;
    std::string err;
    // The document ends mid-escape: must not read past the buffer.
    EXPECT_FALSE(json::parse("{\"s\":\"\\u12", v, &err));
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(json::parse("{\"s\":\"\\u123\"}", v));
    EXPECT_FALSE(json::parse("{\"s\":\"\\uZZZZ\"}", v));
    EXPECT_FALSE(json::parse("{\"s\":\"\\", v));
    EXPECT_FALSE(json::parse("{\"s\":\"unterminated", v));

    // Well-formed escapes decode to UTF-8.
    ASSERT_TRUE(json::parse("{\"s\":\"\\u0041\\u00e9\"}", v));
    EXPECT_EQ(v.getString("s"), "A\xc3\xa9");
}

TEST(JsonAdversarial, RawHighBytesPassThroughVerbatim)
{
    // The reader is 8-bit clean: journal payloads may carry already-
    // encoded UTF-8 (or arbitrary bytes from a corrupt file) inside
    // strings, and they must survive unmangled rather than trip a
    // validator halfway through a parse.
    const std::string raw = "{\"s\":\"caf\xc3\xa9 \xf0\x9f\x92\xa1\"}";
    json::Value v;
    ASSERT_TRUE(json::parse(raw, v));
    EXPECT_EQ(v.getString("s"), "caf\xc3\xa9 \xf0\x9f\x92\xa1");
}

// ---------------------------------------------------------------------
// Trailing garbage
// ---------------------------------------------------------------------

TEST(JsonAdversarial, TrailingGarbageFailsTheWholeParse)
{
    // A valid prefix followed by junk is a corrupt document, not a
    // document: accepting it would let a half-overwritten journal
    // line masquerade as a complete record.
    json::Value v;
    std::string err;
    EXPECT_FALSE(json::parse("{\"a\":1} {\"b\":2}", v, &err));
    EXPECT_FALSE(json::parse("[1,2,3]]", v));
    EXPECT_FALSE(json::parse("42 trailing", v));
    EXPECT_FALSE(json::parse("true false", v));
    EXPECT_FALSE(json::parse("{\"a\":1}\n\ngarbage", v));

    // Trailing whitespace alone is fine.
    EXPECT_TRUE(json::parse("{\"a\":1}  \n\t ", v));
}

} // namespace
