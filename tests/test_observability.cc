/**
 * @file
 * Tests for the live observability plane: the log2 latency
 * histogram, the JSON reader, per-site log rate limiting, the
 * statusboard (snapshot round-trip, cadence-gated atomic publishing,
 * concurrent-writer parse-back), the crash flight recorder (ring
 * semantics and dump-on-fatal exactly-once through the flush-hook
 * registry), and the campaign integration that ties them together.
 */

#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <vector>
#include <gtest/gtest.h>

#include <unistd.h>

#include "common/atomic_file.hh"
#include "common/flight_recorder.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "sim/campaign.hh"
#include "sim/sim_runner.hh"
#include "sim/statusboard.hh"
#include "workload/suites.hh"
#include "workload/workload.hh"

using namespace powerchop;

namespace
{

std::string
freshDir(const std::string &name)
{
    const std::string dir = testing::TempDir() + "powerchop_obs_" +
        std::to_string(::getpid()) + "_" + name;
    std::filesystem::remove_all(dir);
    return dir;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

// ---------------------------------------------------------------------
// Log2Histogram
// ---------------------------------------------------------------------

TEST(Log2Histogram, BucketBoundaries)
{
    // Bucket 0 holds zeros; bucket i > 0 covers [2^(i-1), 2^i).
    EXPECT_EQ(stats::Log2Histogram::bucketIndex(0), 0u);
    EXPECT_EQ(stats::Log2Histogram::bucketIndex(1), 1u);
    EXPECT_EQ(stats::Log2Histogram::bucketIndex(2), 2u);
    EXPECT_EQ(stats::Log2Histogram::bucketIndex(3), 2u);
    EXPECT_EQ(stats::Log2Histogram::bucketIndex(4), 3u);
    EXPECT_EQ(stats::Log2Histogram::bucketIndex(1023), 10u);
    EXPECT_EQ(stats::Log2Histogram::bucketIndex(1024), 11u);
    EXPECT_EQ(stats::Log2Histogram::bucketIndex(UINT64_MAX),
              stats::Log2Histogram::kBuckets - 1);

    // Every value lands inside its own bucket's [low, high) range.
    const std::vector<std::uint64_t> probes = {
        0, 1, 2, 7, 4096, 999'999'999, UINT64_MAX};
    for (std::uint64_t v : probes) {
        const unsigned i = stats::Log2Histogram::bucketIndex(v);
        EXPECT_GE(v, stats::Log2Histogram::bucketLow(i)) << v;
        if (i < stats::Log2Histogram::kBuckets - 1)
            EXPECT_LT(v, stats::Log2Histogram::bucketHigh(i)) << v;
    }
}

TEST(Log2Histogram, CountsSumAndMean)
{
    stats::Log2Histogram h;
    h.sample(0);
    h.sample(10);
    h.sample(10);
    h.sample(100);
    EXPECT_EQ(h.samples(), 4u);
    EXPECT_EQ(h.sum(), 120u);
    EXPECT_DOUBLE_EQ(h.mean(), 30.0);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(stats::Log2Histogram::bucketIndex(10)),
              2u);
}

TEST(Log2Histogram, QuantilesAreMonotoneInQ)
{
    stats::Log2Histogram h;
    EXPECT_EQ(h.quantile(0.5), 0.0) << "empty histogram";
    for (std::uint64_t v = 1; v <= 10'000; ++v)
        h.sample(v * 37);
    double prev = 0;
    for (double q = 0.0; q <= 1.0; q += 0.01) {
        const double cur = h.quantile(q);
        EXPECT_GE(cur, prev) << "q=" << q;
        prev = cur;
    }
    // The quantiles land within the right order of magnitude (log2
    // bucketing bounds the error to one power of two).
    const stats::Quantiles qs = h.quantiles();
    EXPECT_EQ(qs.samples, 10'000u);
    EXPECT_GT(qs.p50, 37.0 * 10'000 * 0.25);
    EXPECT_LT(qs.p50, 37.0 * 10'000);
    EXPECT_LE(qs.p50, qs.p90);
    EXPECT_LE(qs.p90, qs.p99);
}

TEST(Log2Histogram, EmptyHistogramQuantilesAreZero)
{
    // Regression: an empty histogram must report 0 everywhere, never
    // an interpolated garbage value from the zero-count bucket walk.
    stats::Log2Histogram h;
    EXPECT_EQ(h.quantile(0.0), 0.0);
    EXPECT_EQ(h.quantile(0.5), 0.0);
    EXPECT_EQ(h.quantile(1.0), 0.0);
    const stats::Quantiles q = h.quantiles(1e-6);
    EXPECT_EQ(q.samples, 0u);
    EXPECT_EQ(q.p50, 0.0);
    EXPECT_EQ(q.p90, 0.0);
    EXPECT_EQ(q.p99, 0.0);
}

TEST(Log2Histogram, QuantileRejectsOutOfRangeAndNanArgs)
{
    stats::Log2Histogram h;
    h.sample(5);
    EXPECT_THROW(h.quantile(-0.1), PanicError);
    EXPECT_THROW(h.quantile(1.1), PanicError);
    // NaN slips through a naive `q < 0 || q > 1` check (both
    // comparisons are false) and used to walk off the bucket table.
    EXPECT_THROW(h.quantile(std::nan("")), PanicError);
}

TEST(Log2Histogram, MergeIsAssociative)
{
    stats::Log2Histogram a, b, c;
    for (std::uint64_t v = 0; v < 500; ++v) {
        a.sample(v * 3);
        b.sample(v * v);
        c.sample(v + 1'000'000);
    }

    // (a + b) + c  ==  a + (b + c), bucket by bucket.
    stats::Log2Histogram left;
    left.merge(a);
    left.merge(b);
    left.merge(c);
    stats::Log2Histogram bc;
    bc.merge(b);
    bc.merge(c);
    stats::Log2Histogram right;
    right.merge(a);
    right.merge(bc);

    EXPECT_EQ(left.samples(), right.samples());
    EXPECT_EQ(left.sum(), right.sum());
    for (unsigned i = 0; i < stats::Log2Histogram::kBuckets; ++i)
        EXPECT_EQ(left.bucketCount(i), right.bucketCount(i)) << i;
    EXPECT_DOUBLE_EQ(left.quantile(0.9), right.quantile(0.9));
}

TEST(Log2Histogram, ConcurrentSamplingLosesNothing)
{
    stats::Log2Histogram h;
    constexpr unsigned kThreads = 4;
    constexpr std::uint64_t kPerThread = 20'000;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&h, t] {
            for (std::uint64_t v = 0; v < kPerThread; ++v)
                h.sample(v + t);
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(h.samples(), kThreads * kPerThread);
}

// ---------------------------------------------------------------------
// JSON reader
// ---------------------------------------------------------------------

TEST(Json, ParsesScalarsAndEscapes)
{
    json::Value v;
    ASSERT_TRUE(json::parse(
        "{\"a\":1.5,\"b\":\"x\\n\\\"y\\\\\",\"c\":true,"
        "\"d\":null,\"e\":-3}",
        v));
    ASSERT_TRUE(v.isObject());
    EXPECT_DOUBLE_EQ(v.getDouble("a"), 1.5);
    EXPECT_EQ(v.getString("b"), "x\n\"y\\");
    EXPECT_TRUE(v.getBool("c"));
    ASSERT_NE(v.find("d"), nullptr);
    EXPECT_TRUE(v.find("d")->isNull());
    EXPECT_DOUBLE_EQ(v.getDouble("e"), -3.0);
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, ParsesNestedArraysAndObjects)
{
    json::Value v;
    ASSERT_TRUE(json::parse(
        "{\"rows\":[{\"k\":\"deadbeef\"},{\"k\":\"cafe\"}],"
        "\"n\":[1,2,3]}",
        v));
    const json::Value *rows = v.find("rows");
    ASSERT_NE(rows, nullptr);
    ASSERT_EQ(rows->elements().size(), 2u);
    EXPECT_EQ(rows->elements()[1].getString("k"), "cafe");
    const json::Value *n = v.find("n");
    ASSERT_NE(n, nullptr);
    EXPECT_DOUBLE_EQ(n->elements()[2].asDouble(), 3.0);
}

TEST(Json, RejectsGarbage)
{
    json::Value v;
    std::string err;
    EXPECT_FALSE(json::parse("", v, &err));
    EXPECT_FALSE(json::parse("{", v, &err));
    EXPECT_FALSE(json::parse("{\"a\":}", v, &err));
    EXPECT_FALSE(json::parse("[1,2,]", v, &err));
    EXPECT_FALSE(json::parse("{} trailing", v, &err));
    EXPECT_FALSE(json::parse("nul", v, &err));
    EXPECT_FALSE(err.empty()) << "diagnostic expected";

    // The depth limit stops a pathological document, not the stack.
    std::string deep(10'000, '[');
    deep += std::string(10'000, ']');
    EXPECT_FALSE(json::parse(deep, v, &err));
}

TEST(Json, EscapeRoundTripsThroughParse)
{
    const std::string nasty = "line\nquote\"back\\slash\ttab";
    json::Value v;
    ASSERT_TRUE(json::parse(
        "{\"s\":\"" + json::escape(nasty) + "\"}", v));
    EXPECT_EQ(v.getString("s"), nasty);
}

// ---------------------------------------------------------------------
// Log rate limiting
// ---------------------------------------------------------------------

TEST(LogRateLimiter, BurstThenSuppression)
{
    // 1 msg/s sustained, burst of 3: the first 3 pass, the rest of a
    // tight loop are suppressed and counted.
    LogRateLimiter limiter(1.0, 3.0);
    unsigned allowed = 0;
    for (int i = 0; i < 50; ++i)
        allowed += limiter.allow() ? 1 : 0;
    EXPECT_EQ(allowed, 3u);
    EXPECT_EQ(limiter.suppressed(), 47u);
    EXPECT_EQ(limiter.takeSuppressed(), 47u);
    EXPECT_EQ(limiter.suppressed(), 0u);
}

// ---------------------------------------------------------------------
// Statusboard
// ---------------------------------------------------------------------

StatusSnapshot
fullSnapshot()
{
    StatusSnapshot s;
    s.role = "supervisor";
    s.label = "campaign";
    s.jobsTotal = 40;
    s.jobsDone = 25;
    s.jobsOk = 23;
    s.jobsFailed = 2;
    s.jobsRetried = 5;
    s.inFlight = {0xdeadbeefcafef00dull, 0x1ull};
    s.mips = 12.5;
    s.restarts = 3;
    s.etaSeconds = 42.25;
    s.finished = false;
    s.jobLatencyMs = {100, 1.5, 2.5, 9.0};
    s.fsyncLatencyMs = {100, 0.1, 0.2, 0.4};
    s.restartBackoffMs = {3, 100.0, 200.0, 400.0};
    s.stages = {{"simulate", 1.25, 10}, {"translate", 0.5, 10}};
    ShardStatus sh;
    sh.shard = 1;
    sh.total = 20;
    sh.done = 12;
    sh.restarts = 2;
    sh.helpers = 1;
    sh.active = true;
    sh.heartbeatAgeSeconds = 0.75;
    s.shards = {sh};
    return s;
}

TEST(Statusboard, SnapshotJsonRoundTrip)
{
    const StatusSnapshot s = fullSnapshot();
    const std::string text = s.toJson();

    // The document is well-formed JSON in the first place...
    json::Value v;
    ASSERT_TRUE(json::parse(text, v)) << text;

    // ...and every field survives the round trip.
    StatusSnapshot r;
    ASSERT_TRUE(StatusSnapshot::fromJson(text, r)) << text;
    EXPECT_EQ(r.role, "supervisor");
    EXPECT_EQ(r.label, "campaign");
    EXPECT_EQ(r.jobsTotal, 40u);
    EXPECT_EQ(r.jobsDone, 25u);
    EXPECT_EQ(r.jobsOk, 23u);
    EXPECT_EQ(r.jobsFailed, 2u);
    EXPECT_EQ(r.jobsRetried, 5u);
    ASSERT_EQ(r.inFlight.size(), 2u);
    EXPECT_EQ(r.inFlight[0], 0xdeadbeefcafef00dull);
    EXPECT_EQ(r.inFlight[1], 0x1ull);
    EXPECT_NEAR(r.mips, 12.5, 1e-6);
    EXPECT_EQ(r.restarts, 3u);
    EXPECT_NEAR(r.etaSeconds, 42.25, 1e-6);
    EXPECT_FALSE(r.finished);
    EXPECT_EQ(r.jobLatencyMs.samples, 100u);
    EXPECT_NEAR(r.jobLatencyMs.p90, 2.5, 1e-6);
    EXPECT_EQ(r.restartBackoffMs.samples, 3u);
    ASSERT_EQ(r.shards.size(), 1u);
    EXPECT_EQ(r.shards[0].shard, 1u);
    EXPECT_EQ(r.shards[0].done, 12u);
    EXPECT_EQ(r.shards[0].helpers, 1u);
    EXPECT_TRUE(r.shards[0].active);
    EXPECT_NEAR(r.shards[0].heartbeatAgeSeconds, 0.75, 1e-6);
}

TEST(Statusboard, FromJsonRejectsForeignDocuments)
{
    StatusSnapshot s;
    EXPECT_FALSE(StatusSnapshot::fromJson("not json", s));
    EXPECT_FALSE(StatusSnapshot::fromJson("{}", s))
        << "schema tag required";
    EXPECT_FALSE(StatusSnapshot::fromJson(
        "{\"schema\":\"something-else\"}", s));
    EXPECT_TRUE(StatusSnapshot::fromJson(
        "{\"schema\":\"powerchop-status-v1\"}", s))
        << "all data fields are optional";
}

TEST(Statusboard, PublisherGatesOnCadenceUnlessForced)
{
    const std::string dir = freshDir("cadence");
    makeCampaignDirs(dir);
    // A cadence floor far above the test's runtime: only the first
    // unforced publish and the forced ones may write.
    StatusPublisher pub(dir + "/s.json", 3600.0);
    StatusSnapshot s;
    s.role = "campaign";
    EXPECT_TRUE(pub.publish(s));
    for (int i = 0; i < 10; ++i)
        EXPECT_FALSE(pub.publish(s));
    EXPECT_EQ(pub.published(), 1u);
    EXPECT_TRUE(pub.publish(s, /*force=*/true));
    EXPECT_EQ(pub.published(), 2u);

    StatusSnapshot r;
    ASSERT_TRUE(StatusSnapshot::fromJson(
        readFile(dir + "/s.json"), r));
    EXPECT_EQ(r.updateSeq, 2u) << "forced write is the one on disk";
    EXPECT_EQ(r.pid, ::getpid());
}

TEST(Statusboard, ConcurrentForcedWritersNeverTearTheFile)
{
    // N threads force-publishing the same path race the atomic
    // rename; a reader polling the file must parse a complete
    // snapshot on every single read.
    const std::string dir = freshDir("concurrent");
    makeCampaignDirs(dir);
    const std::string path = dir + "/s.json";
    StatusPublisher pub(path, 0.0);

    std::atomic<bool> stop{false};
    std::atomic<std::size_t> reads{0}, failures{0};
    std::thread reader([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            std::ifstream in(path, std::ios::binary);
            if (!in.good())
                continue; // Not yet published.
            std::ostringstream buf;
            buf << in.rdbuf();
            const std::string text = buf.str();
            if (text.empty())
                continue;
            StatusSnapshot snap;
            if (!StatusSnapshot::fromJson(text, snap))
                failures.fetch_add(1);
            reads.fetch_add(1);
        }
    });

    std::vector<std::thread> writers;
    for (unsigned t = 0; t < 4; ++t) {
        writers.emplace_back([&pub, t] {
            for (int i = 0; i < 200; ++i) {
                StatusSnapshot s = fullSnapshot();
                s.label = "writer-" + std::to_string(t);
                pub.publish(s, /*force=*/true);
            }
        });
    }
    for (auto &t : writers)
        t.join();
    stop.store(true);
    reader.join();

    EXPECT_EQ(failures.load(), 0u)
        << "a reader saw a torn/partial snapshot";
    EXPECT_GT(reads.load(), 0u);
    EXPECT_EQ(pub.published(), 800u);
}

TEST(Statusboard, ReadStatusDirOrdersAggregateFirst)
{
    const std::string dir = freshDir("readdir");
    makeCampaignDirs(statusDirPath(dir));
    StatusSnapshot s;
    s.role = "shard-worker";
    StatusPublisher(statusDirPath(dir) + "/shard-0001.json", 0)
        .publish(s, true);
    StatusPublisher(statusDirPath(dir) + "/shard-0000.json", 0)
        .publish(s, true);
    s.role = "supervisor";
    StatusPublisher(campaignStatusPath(dir), 0).publish(s, true);
    // A junk file must be surfaced as unparsed, not dropped.
    atomicWriteFile(statusDirPath(dir) + "/zz-junk.json",
                    "{\"schema\":\"nope\"}\n");

    const auto entries = readStatusDir(dir);
    ASSERT_EQ(entries.size(), 4u);
    EXPECT_EQ(entries[0].file, "campaign.json");
    EXPECT_EQ(entries[1].file, "shard-0000.json");
    EXPECT_EQ(entries[2].file, "shard-0001.json");
    EXPECT_EQ(entries[3].file, "zz-junk.json");
    EXPECT_TRUE(entries[0].parsed);
    EXPECT_EQ(entries[0].snap.role, "supervisor");
    EXPECT_FALSE(entries[3].parsed);
    EXPECT_GE(entries[0].ageSeconds, 0.0);

    // All three renderers accept the mixed directory.
    EXPECT_NE(renderStatusTable(entries).find("<unparseable>"),
              std::string::npos);
    json::Value v;
    EXPECT_TRUE(json::parse(renderStatusJson(dir, entries), v));
    const std::string prom = renderStatusPrometheus(entries);
    EXPECT_NE(prom.find("# TYPE powerchop_jobs_total gauge"),
              std::string::npos);
    EXPECT_NE(prom.find("entry=\"shard-0000\""), std::string::npos);

    // An absent status dir is an empty listing, not an error.
    EXPECT_TRUE(readStatusDir(freshDir("no-such")).empty());
}

TEST(Statusboard, PublisherClampsUnstableEta)
{
    // Early in a run the ETA extrapolation can produce negative,
    // infinite or NaN estimates; the publisher is the single choke
    // point that clamps them to the -1 "unknown" sentinel. Inf/NaN
    // would otherwise render as invalid JSON ("inf"/"nan" tokens)
    // and turn the whole snapshot unparseable.
    const std::string dir = freshDir("eta");
    makeCampaignDirs(dir);
    const std::string path = dir + "/s.json";
    for (const double bad :
         {-3.0, std::numeric_limits<double>::infinity(),
          -std::numeric_limits<double>::infinity(), std::nan("")}) {
        StatusPublisher pub(path, 0.0);
        StatusSnapshot s;
        s.role = "campaign";
        s.etaSeconds = bad;
        ASSERT_TRUE(pub.publish(s, /*force=*/true));
        StatusSnapshot r;
        ASSERT_TRUE(StatusSnapshot::fromJson(readFile(path), r))
            << "eta=" << bad << " must still produce valid JSON";
        EXPECT_EQ(r.etaSeconds, -1.0) << "eta=" << bad;
    }

    // A sane estimate passes through untouched.
    StatusPublisher pub(path, 0.0);
    StatusSnapshot s;
    s.role = "campaign";
    s.etaSeconds = 17.5;
    ASSERT_TRUE(pub.publish(s, /*force=*/true));
    StatusSnapshot r;
    ASSERT_TRUE(StatusSnapshot::fromJson(readFile(path), r));
    EXPECT_NEAR(r.etaSeconds, 17.5, 1e-6);
}

TEST(Statusboard, FromJsonNormalizesForeignEta)
{
    // Snapshots written by other (older/buggier) publishers get the
    // same normalization on the read side.
    StatusSnapshot s;
    ASSERT_TRUE(StatusSnapshot::fromJson(
        "{\"schema\":\"powerchop-status-v1\",\"eta_seconds\":-42}",
        s));
    EXPECT_EQ(s.etaSeconds, -1.0);
    ASSERT_TRUE(StatusSnapshot::fromJson(
        "{\"schema\":\"powerchop-status-v1\"}", s));
    EXPECT_EQ(s.etaSeconds, -1.0) << "absent means unknown";
}

TEST(Statusboard, UnknownEtaRendersUniformlyAcrossRenderers)
{
    StatusEntry e;
    e.file = "campaign.json";
    e.ageSeconds = 0.1;
    e.parsed = true;
    e.snap.role = "campaign";
    e.snap.jobsTotal = 10;
    e.snap.jobsDone = 1;
    e.snap.etaSeconds = -1.0;
    const std::vector<StatusEntry> entries = {e};

    // Table: the ETA column shows '?', never a raw negative number.
    const std::string table = renderStatusTable(entries);
    EXPECT_NE(table.find("?"), std::string::npos) << table;
    EXPECT_EQ(table.find("-1"), std::string::npos) << table;

    // --json embeds the clamped document (and stays parseable).
    e.snap.etaSeconds = -1.0;
    json::Value v;
    ASSERT_TRUE(json::parse(e.snap.toJson(), v));
    EXPECT_DOUBLE_EQ(v.getDouble("eta_seconds"), -1.0);

    // --prom exposes the gauge with the -1 sentinel so dashboards
    // can distinguish "unknown" from "almost done".
    const std::string prom = renderStatusPrometheus(entries);
    EXPECT_NE(prom.find("# TYPE powerchop_eta_seconds gauge"),
              std::string::npos);
    EXPECT_NE(prom.find("powerchop_eta_seconds{entry=\"campaign\","
                        "role=\"campaign\"} -1.000000"),
              std::string::npos)
        << prom;
}

TEST(Statusboard, ServeStatsRoundTripAndRendering)
{
    StatusSnapshot s;
    s.role = "server";
    s.label = "powerchopd";
    s.serve.requests = 10;
    s.serve.hits = 7;
    s.serve.misses = 3;
    s.serve.evictions = 1;
    s.serve.entries = 4;
    s.serve.bytes = 2048;
    s.serve.qps = 123.5;
    // No latency samples yet: the table cell must render the em
    // dash, not garbage quantiles of an empty histogram.
    s.serve.requestLatencyMs = {};

    StatusSnapshot r;
    ASSERT_TRUE(StatusSnapshot::fromJson(s.toJson(), r));
    EXPECT_EQ(r.serve.requests, 10u);
    EXPECT_EQ(r.serve.hits, 7u);
    EXPECT_EQ(r.serve.misses, 3u);
    EXPECT_EQ(r.serve.evictions, 1u);
    EXPECT_EQ(r.serve.entries, 4u);
    EXPECT_EQ(r.serve.bytes, 2048u);
    EXPECT_NEAR(r.serve.qps, 123.5, 1e-6);

    StatusEntry e;
    e.file = "server.json";
    e.parsed = true;
    e.snap = s;
    std::string table = renderStatusTable({e});
    EXPECT_NE(table.find("serve: 10 req (7 hit / 3 miss)"),
              std::string::npos)
        << table;
    EXPECT_NE(table.find("—"), std::string::npos)
        << "empty latency histogram must render as an em dash: "
        << table;

    e.snap.serve.requestLatencyMs = {10, 0.5, 1.5, 4.0};
    table = renderStatusTable({e});
    EXPECT_NE(table.find("p50=0.500"), std::string::npos) << table;

    const std::string prom = renderStatusPrometheus({e});
    EXPECT_NE(prom.find("powerchop_serve_hits{entry=\"server\","
                        "role=\"server\"} 7.000000"),
              std::string::npos)
        << prom;

    // Snapshots that never served a request must not grow a serve
    // block (byte-compat with pre-serve readers).
    StatusSnapshot plain;
    plain.role = "campaign";
    EXPECT_EQ(plain.toJson().find("\"serve\""), std::string::npos);
}

// ---------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------

TEST(FlightRecorder, DisabledRecorderIgnoresEvents)
{
    FlightRecorder rec(8);
    rec.record(FlightEventType::Note, 1, "dropped");
    EXPECT_EQ(rec.recorded(), 0u);
    EXPECT_TRUE(rec.snapshot().empty());
    EXPECT_FALSE(rec.dumpNow());
}

TEST(FlightRecorder, RingKeepsNewestEventsInSeqOrder)
{
    const std::string dir = freshDir("ring");
    makeCampaignDirs(dir);
    FlightRecorder rec(8);
    rec.enable(dir + "/flight.jsonl");
    for (std::uint64_t i = 0; i < 20; ++i)
        rec.record(FlightEventType::JobStart, i, "j");
    rec.disable();

    const auto events = rec.snapshot();
    ASSERT_EQ(events.size(), 8u) << "bounded by capacity";
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].seq, 12 + i) << "oldest first";
        EXPECT_EQ(events[i].key, 12 + i);
    }
    EXPECT_EQ(rec.recorded(), 20u);
}

TEST(FlightRecorder, EventJsonlParsesAndNamesTypes)
{
    FlightEvent e;
    e.seq = 7;
    e.monoSeconds = 1.5;
    e.type = FlightEventType::WorkerCrash;
    e.key = 0xabcull;
    e.detail = "shard 1: signal 9 \"Killed\"";
    json::Value v;
    ASSERT_TRUE(json::parse(e.toJsonl(), v)) << e.toJsonl();
    EXPECT_EQ(v.getString("type"), "worker-crash");
    EXPECT_EQ(v.getUint64("seq"), 7u);
    EXPECT_EQ(v.getString("key"), "0000000000000abc");
    EXPECT_EQ(v.getString("detail"), "shard 1: signal 9 \"Killed\"");

    // No event type may render an empty or duplicate name.
    std::set<std::string> names;
    for (int t = 0; t <= static_cast<int>(FlightEventType::Note);
         ++t) {
        const std::string name =
            flightEventTypeName(static_cast<FlightEventType>(t));
        EXPECT_FALSE(name.empty());
        EXPECT_TRUE(names.insert(name).second) << name;
    }
}

TEST(FlightRecorder, DumpOnFatalExactlyOnceThroughFlushHooks)
{
    const std::string dir = freshDir("dump");
    makeCampaignDirs(dir);
    const std::string path = dir + "/flight.jsonl";
    FlightRecorder rec(16);
    rec.enable(path);
    rec.record(FlightEventType::Retry, 5, "attempt 2: boom");
    rec.record(FlightEventType::Signal);

    // fatal() drains the flush hooks before throwing: the postmortem
    // file must exist by the time the exception is catchable.
    EXPECT_THROW(fatal("campaign exploded"), FatalError);
    ASSERT_TRUE(std::filesystem::exists(path));
    std::istringstream lines(readFile(path));
    std::string line;
    std::size_t parsed = 0;
    while (std::getline(lines, line)) {
        json::Value v;
        EXPECT_TRUE(json::parse(line, v)) << line;
        ++parsed;
    }
    EXPECT_EQ(parsed, 2u);

    // The hook disarmed itself: a second drain with no new events
    // must not resurrect the file.
    std::filesystem::remove(path);
    EXPECT_THROW(fatal("again"), FatalError);
    EXPECT_FALSE(std::filesystem::exists(path))
        << "dump must happen exactly once per arming";

    // A new event re-arms it.
    rec.record(FlightEventType::Note, 0, "rearmed");
    drainFlushHooks();
    EXPECT_TRUE(std::filesystem::exists(path));
    rec.disable();
}

// ---------------------------------------------------------------------
// Campaign integration
// ---------------------------------------------------------------------

WorkloadSpec
tinyWorkload(unsigned seed)
{
    WorkloadSpec w;
    w.name = "obswl-" + std::to_string(seed);
    w.seed = seed;
    PhaseSpec compute;
    compute.name = "compute";
    compute.simdFrac = 0.05;
    w.phases = {compute};
    w.schedule = {{0, 50'000}};
    return w;
}

TEST(CampaignStatus, PublishedSnapshotTracksTheRun)
{
    const std::string dir = freshDir("campaign");
    std::vector<SimJob> jobs;
    for (unsigned i = 1; i <= 3; ++i) {
        SimJob job;
        job.workload = tinyWorkload(i);
        job.machine = serverConfig();
        job.opts.maxInstructions = 30'000;
        jobs.push_back(std::move(job));
    }

    SimJobRunner runner(2);
    CampaignOptions copts;
    copts.publishStatus = true;
    const CampaignResult res = runCampaign(runner, jobs, dir, copts);
    EXPECT_TRUE(res.complete());

    // The final (forced) snapshot shows the finished campaign, with
    // job and fsync latency histograms populated.
    StatusSnapshot snap;
    ASSERT_TRUE(StatusSnapshot::fromJson(
        readFile(campaignStatusPath(dir)), snap));
    EXPECT_EQ(snap.role, "campaign");
    EXPECT_TRUE(snap.finished);
    EXPECT_EQ(snap.jobsTotal, 3u);
    EXPECT_EQ(snap.jobsDone, 3u);
    EXPECT_EQ(snap.jobsOk, 3u);
    EXPECT_EQ(snap.jobsFailed, 0u);
    EXPECT_TRUE(snap.inFlight.empty());
    EXPECT_GT(snap.mips, 0.0);
    EXPECT_EQ(snap.jobLatencyMs.samples, 3u);
    EXPECT_GT(snap.jobLatencyMs.p50, 0.0);
    EXPECT_GE(snap.fsyncLatencyMs.samples, 3u);

    // The runner report carries the same latency histogram.
    const stats::Quantiles q =
        runner.report().taskLatencyNs.quantiles(1e-6);
    EXPECT_EQ(q.samples, 3u);
    EXPECT_NE(runner.report().toJson("obs").find("task_latency_ms"),
              std::string::npos);
}

TEST(CampaignStatus, DisabledCampaignWritesNoStatusFiles)
{
    const std::string dir = freshDir("campaign-off");
    SimJob job;
    job.workload = tinyWorkload(1);
    job.machine = serverConfig();
    job.opts.maxInstructions = 30'000;

    SimJobRunner runner(1);
    CampaignOptions copts; // publishStatus defaults to false.
    const CampaignResult res =
        runCampaign(runner, {job}, dir, copts);
    EXPECT_TRUE(res.complete());
    EXPECT_FALSE(std::filesystem::exists(statusDirPath(dir)))
        << "status/ must not appear when observability is off";
}

} // namespace
