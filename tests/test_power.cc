/**
 * @file
 * Unit tests for the power models: gating-overhead energy (Eq. 1),
 * per-unit specs, CACTI-lite and the energy accumulator.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "power/accumulator.hh"
#include "power/cacti_lite.hh"
#include "power/core_power_model.hh"
#include "power/gating_energy.hh"
#include "uarch/vpu.hh"

using namespace powerchop;

// --- gating energy (Hu et al., Eq. 1) ------------------------------------------

TEST(GatingEnergy, MatchesEquationOne)
{
    GatingEnergyParams p;
    p.sleepTransistorRatio = 0.2;
    p.switchingFactor = 0.5;
    // E = 2 * 0.2 * (P/f) * 0.5 = 0.2 * P/f
    double e = gatingOverheadEnergy(3.0, 3.0e9, p);
    EXPECT_NEAR(e, 0.2 * 3.0 / 3.0e9, 1e-15);
}

TEST(GatingEnergy, ScalesWithParameters)
{
    GatingEnergyParams p;
    double base = gatingOverheadEnergy(1.0, 1e9, p);
    p.sleepTransistorRatio *= 2;
    EXPECT_NEAR(gatingOverheadEnergy(1.0, 1e9, p), 2 * base, 1e-15);
    p.sleepTransistorRatio /= 2;
    p.switchingFactor *= 3;
    EXPECT_NEAR(gatingOverheadEnergy(1.0, 1e9, p), 3 * base, 1e-15);
}

TEST(GatingEnergy, Validation)
{
    EXPECT_THROW(gatingOverheadEnergy(1.0, 0.0), FatalError);
    EXPECT_THROW(gatingOverheadEnergy(-1.0, 1e9), FatalError);
}

// --- unit specs and core params --------------------------------------------------

TEST(CorePowerParams, ServerAreaFractionsMatchTableOne)
{
    CorePowerParams p = serverPowerParams();
    EXPECT_NEAR(p.areaFraction(Unit::Mlc), 0.35, 1e-9);
    EXPECT_NEAR(p.areaFraction(Unit::Vpu), 0.20, 1e-9);
    EXPECT_NEAR(p.areaFraction(Unit::Bpu), 0.04, 1e-9);
}

TEST(CorePowerParams, MobileAreaFractionsMatchTableOne)
{
    CorePowerParams p = mobilePowerParams();
    EXPECT_NEAR(p.areaFraction(Unit::Mlc), 0.60, 1e-9);
    EXPECT_NEAR(p.areaFraction(Unit::Vpu), 0.18, 1e-9);
    EXPECT_NEAR(p.areaFraction(Unit::Bpu), 0.03, 1e-9);
}

TEST(CorePowerParams, LeakageProportionalToArea)
{
    CorePowerParams p = serverPowerParams();
    double mlc_density =
        p.unit(Unit::Mlc).leakage / p.unit(Unit::Mlc).areaMm2;
    double vpu_density =
        p.unit(Unit::Vpu).leakage / p.unit(Unit::Vpu).areaMm2;
    EXPECT_NEAR(mlc_density, vpu_density, 1e-9);
}

TEST(CorePowerParams, ValidationCatchesBadValues)
{
    CorePowerParams p = serverPowerParams();
    p.unit(Unit::Vpu).leakage = -1;
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(UnitPower, Names)
{
    EXPECT_STREQ(unitName(Unit::Vpu), "VPU");
    EXPECT_STREQ(unitName(Unit::Rest), "Rest");
}

// --- model arithmetic --------------------------------------------------------------

TEST(CorePowerModel, GatedLeakageAtFivePercent)
{
    CorePowerModel m(serverPowerParams());
    const auto &spec = m.params().unit(Unit::Vpu);
    Joules on = m.leakageEnergy(Unit::Vpu, 1.0, 0.0);
    Joules off = m.leakageEnergy(Unit::Vpu, 0.0, 1.0);
    EXPECT_NEAR(on, spec.leakage, 1e-12);
    EXPECT_NEAR(off, 0.05 * spec.leakage, 1e-12);
}

TEST(CorePowerModel, MlcWayLeakageInterpolates)
{
    CorePowerModel m(serverPowerParams());
    const auto &spec = m.params().unit(Unit::Mlc);
    // One second at 1/8 ways: active eighth leaks fully, the rest at
    // the gated fraction.
    Joules e = m.mlcLeakageEnergy(0, 0, 0, 1.0, 0.125, 0.5, 0.25);
    EXPECT_NEAR(e, spec.leakage * (0.125 + 0.05 * 0.875), 1e-12);
    // A quarter-ways second interpolates the same way.
    Joules q = m.mlcLeakageEnergy(0, 0, 1.0, 0, 0.125, 0.5, 0.25);
    EXPECT_NEAR(q, spec.leakage * (0.25 + 0.05 * 0.75), 1e-12);
}

TEST(CorePowerModel, MlcAccessEnergyFloor)
{
    CorePowerModel m(serverPowerParams());
    double full = m.mlcAccessEnergy(1.0);
    double one = m.mlcAccessEnergy(0.125);
    EXPECT_LT(one, full);
    EXPECT_GT(one, m.params().mlcEnergyFloor * full - 1e-15);
}

TEST(CorePowerModel, SwitchOverheadUsesEqOne)
{
    CorePowerParams p = serverPowerParams();
    Joules direct = gatingOverheadEnergy(p.unit(Unit::Mlc).peakDynamic,
                                         p.frequencyHz, p.gating);
    EXPECT_NEAR(p.switchOverhead(Unit::Mlc), direct, 1e-18);
}

// --- cacti-lite ----------------------------------------------------------------------

TEST(CactiLite, HtbCostNearPaperFigures)
{
    // The paper's HTB: 128 entries x 64 bits, fully associative,
    // costing about 0.027 W and 0.008 mm^2 at 32nm (Section IV-B4).
    ArraySpec spec;
    spec.entries = 128;
    spec.bitsPerEntry = 64;
    spec.style = ArrayStyle::Cam;
    // One head per ~15 instructions at ~3e9 insns/s.
    spec.accessesPerSecond = 2.0e8;
    ArrayEstimate est = estimateArray(spec);
    EXPECT_NEAR(est.areaMm2, 0.008, 0.004);
    EXPECT_GT(est.totalPower, 0.005);
    EXPECT_LT(est.totalPower, 0.08);
}

TEST(CactiLite, CamCostsMoreThanRam)
{
    ArraySpec cam{128, 64, ArrayStyle::Cam, 1e8};
    ArraySpec ram{128, 64, ArrayStyle::Ram, 1e8};
    EXPECT_GT(estimateArray(cam).areaMm2, estimateArray(ram).areaMm2);
    EXPECT_GT(estimateArray(cam).energyPerAccess,
              estimateArray(ram).energyPerAccess);
}

TEST(CactiLite, ScalesWithSize)
{
    ArraySpec small{64, 32, ArrayStyle::Ram, 0};
    ArraySpec big{256, 32, ArrayStyle::Ram, 0};
    EXPECT_NEAR(estimateArray(big).areaMm2,
                4 * estimateArray(small).areaMm2, 1e-9);
}

TEST(CactiLite, RejectsEmptyArray)
{
    EXPECT_THROW(estimateArray(ArraySpec{0, 64}), FatalError);
}

// --- accumulator -----------------------------------------------------------------------

TEST(Accumulator, EnergyPartsSumToTotal)
{
    CorePowerModel m(serverPowerParams());
    ActivityRecord a;
    a.cycles = 3e9;  // one second
    a.instructions = 4e9;
    a.vpuOps = 1e8;
    a.bpuLargeLookups = 2e8;
    a.mlcAccessesFull = 3e7;
    a.vpuGatedCycles = 1e9;
    a.mlcFullCycles = 3e9;
    a.vpuSwitches = 100;
    EnergyBreakdown e = accumulateEnergy(m, a, 8);

    Joules sum = 0;
    for (unsigned i = 0; i < numUnits; ++i)
        sum += e.units[i].total();
    EXPECT_NEAR(sum, e.totalEnergy(), 1e-9);
    EXPECT_NEAR(e.totalEnergy(), e.leakageEnergy() + e.dynamicEnergy(),
                1e-9);
    EXPECT_NEAR(e.seconds, 1.0, 1e-12);
    EXPECT_GT(e.averagePower(), 0.0);
    EXPECT_GT(e.averageLeakagePower(), 0.0);
}

TEST(Accumulator, GatingReducesLeakage)
{
    CorePowerModel m(serverPowerParams());
    ActivityRecord on;
    on.cycles = 3e9;
    on.instructions = 4e9;
    on.mlcFullCycles = 3e9;

    ActivityRecord off = on;
    off.vpuGatedCycles = 3e9;
    off.bpuGatedCycles = 3e9;
    off.mlcFullCycles = 0;
    off.mlcOneWayCycles = 3e9;

    EnergyBreakdown e_on = accumulateEnergy(m, on, 8);
    EnergyBreakdown e_off = accumulateEnergy(m, off, 8);
    EXPECT_LT(e_off.leakageEnergy(), 0.7 * e_on.leakageEnergy());
}

TEST(Accumulator, SwitchesAddOverheadEnergy)
{
    CorePowerModel m(serverPowerParams());
    ActivityRecord a;
    a.cycles = 1e9;
    a.vpuSwitches = 1000;
    EnergyBreakdown e = accumulateEnergy(m, a, 8);
    EXPECT_NEAR(e.unit(Unit::Vpu).gatingOverhead,
                1000 * m.params().switchOverhead(Unit::Vpu), 1e-12);
}

TEST(Accumulator, MlcAccessEnergyScalesWithWays)
{
    CorePowerModel m(serverPowerParams());
    ActivityRecord full;
    full.cycles = 1e9;
    full.mlcAccessesFull = 1e8;
    ActivityRecord one;
    one.cycles = 1e9;
    one.mlcAccessesOne = 1e8;
    EXPECT_GT(accumulateEnergy(m, full, 8).unit(Unit::Mlc).dynamic,
              accumulateEnergy(m, one, 8).unit(Unit::Mlc).dynamic);
}

TEST(Accumulator, RejectsZeroAssoc)
{
    CorePowerModel m(serverPowerParams());
    EXPECT_THROW(accumulateEnergy(m, ActivityRecord{}, 0), FatalError);
}

TEST(Accumulator, ToStringMentionsUnits)
{
    CorePowerModel m(serverPowerParams());
    ActivityRecord a;
    a.cycles = 1e9;
    std::string s = accumulateEnergy(m, a, 8).toString();
    EXPECT_NE(s.find("VPU"), std::string::npos);
    EXPECT_NE(s.find("MLC"), std::string::npos);
}

// --- vpu ------------------------------------------------------------------------------

TEST(Vpu, NativeVsEmulatedSlots)
{
    Vpu v(VpuParams{4, 16, 1.25});
    EXPECT_DOUBLE_EQ(v.executeSimd(), 1.0);
    v.gateOff();
    EXPECT_DOUBLE_EQ(v.executeSimd(), 5.0);
    EXPECT_EQ(v.nativeOps(), 1u);
    EXPECT_EQ(v.emulatedOps(), 1u);
    v.gateOn();
    EXPECT_DOUBLE_EQ(v.executeSimd(), 1.0);
}
