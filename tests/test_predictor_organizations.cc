/**
 * @file
 * Unit tests for the alternative large-BPU organizations: the agree
 * predictor and the perceptron predictor, plus their integration into
 * the BPU complex.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/random.hh"
#include "uarch/agree.hh"
#include "uarch/bpu_complex.hh"
#include "uarch/perceptron.hh"
#include "workload/branch_behavior.hh"

using namespace powerchop;

namespace
{

double
accuracyOn(DirectionPredictor &pred, const BranchBehavior &beh,
           int n = 20000, Addr pc = 0x4000)
{
    BranchOutcomeEngine eng(42);
    BranchRuntime rt;
    int correct = 0;
    for (int i = 0; i < n; ++i) {
        bool taken = eng.nextOutcome(beh, rt);
        bool p = pred.predictAndTrain(pc, taken);
        if (i >= n / 4)
            correct += (p == taken);
    }
    return correct / (n * 0.75);
}

BranchBehavior
makeBehavior(BranchKind kind)
{
    BranchBehavior b;
    b.kind = kind;
    b.noise = 0.0;
    return b;
}

} // namespace

// --- agree ---------------------------------------------------------------------

TEST(Agree, LearnsBiasedBranches)
{
    AgreePredictor p;
    BranchBehavior b = makeBehavior(BranchKind::Biased);
    b.biasTaken = 0.95;
    EXPECT_GT(accuracyOn(p, b), 0.90);
}

TEST(Agree, LearnsNotTakenBias)
{
    AgreePredictor p;
    BranchBehavior b = makeBehavior(BranchKind::Biased);
    b.biasTaken = 0.05;
    EXPECT_GT(accuracyOn(p, b), 0.90);
}

TEST(Agree, CapturesGlobalCorrelation)
{
    AgreePredictor p(4096, 2048, 8);
    BranchOutcomeEngine eng(5);
    BranchBehavior churn = makeBehavior(BranchKind::Biased);
    churn.biasTaken = 0.5;
    BranchBehavior corr = makeBehavior(BranchKind::GlobalCorrelated);
    corr.historyMask = 0b11;
    BranchRuntime rt_churn, rt_corr;
    int correct = 0, counted = 0;
    const int n = 40000;
    for (int i = 0; i < n; ++i) {
        p.predictAndTrain(0x100, eng.nextOutcome(churn, rt_churn));
        bool taken = eng.nextOutcome(corr, rt_corr);
        bool pred = p.predictAndTrain(0x200, taken);
        if (i > n / 2) {
            correct += (pred == taken);
            ++counted;
        }
    }
    EXPECT_GT(correct / double(counted), 0.85);
}

TEST(Agree, ResetClearsBiasAndHistory)
{
    AgreePredictor p;
    BranchBehavior b = makeBehavior(BranchKind::Biased);
    b.biasTaken = 0.0;
    accuracyOn(p, b, 2000);
    p.reset();
    // After reset the first lookup falls back to predict-taken.
    EXPECT_TRUE(p.predictAndTrain(0x4000, true));
}

TEST(Agree, ValidatesGeometry)
{
    EXPECT_THROW(AgreePredictor(1000, 2048, 8), FatalError);
    EXPECT_THROW(AgreePredictor(4096, 2048, 0), FatalError);
}

// --- perceptron -----------------------------------------------------------------

TEST(Perceptron, LearnsBiasedBranches)
{
    PerceptronPredictor p;
    BranchBehavior b = makeBehavior(BranchKind::Biased);
    b.biasTaken = 0.95;
    EXPECT_GT(accuracyOn(p, b), 0.90);
}

TEST(Perceptron, LearnsSingleHistoryBitCorrelation)
{
    // outcome == previous outcome: linearly separable, the perceptron
    // should nail it.
    PerceptronPredictor p(512, 16);
    BranchOutcomeEngine eng(9);
    BranchBehavior corr = makeBehavior(BranchKind::GlobalCorrelated);
    corr.historyMask = 0b1;
    BranchBehavior churn = makeBehavior(BranchKind::Random);
    BranchRuntime rt_corr, rt_churn;
    int correct = 0, counted = 0;
    const int n = 30000;
    for (int i = 0; i < n; ++i) {
        p.predictAndTrain(0x300, eng.nextOutcome(churn, rt_churn));
        bool taken = eng.nextOutcome(corr, rt_corr);
        bool pred = p.predictAndTrain(0x700, taken);
        if (i > n / 2) {
            correct += (pred == taken);
            ++counted;
        }
    }
    EXPECT_GT(correct / double(counted), 0.90);
}

TEST(Perceptron, LearnsLongPatterns)
{
    // A period-7 repeating pattern is a linear function of a 16-deep
    // history window.
    PerceptronPredictor p(512, 16);
    BranchBehavior b = makeBehavior(BranchKind::Pattern);
    b.patternBits = 0b0110101;
    b.patternLen = 7;
    EXPECT_GT(accuracyOn(p, b), 0.9);
}

TEST(Perceptron, CannotLearnParity)
{
    // XOR of two (random) history bits is the classic single-layer-
    // perceptron counterexample. Interleave random churn so the
    // correlated branch's inputs are genuinely random bits.
    PerceptronPredictor p(512, 16);
    BranchOutcomeEngine eng(33);
    BranchBehavior churn = makeBehavior(BranchKind::Random);
    BranchBehavior parity = makeBehavior(BranchKind::GlobalCorrelated);
    parity.historyMask = 0b11;
    BranchRuntime rt_churn, rt_parity;
    int correct = 0, counted = 0;
    const int n = 30000;
    for (int i = 0; i < n; ++i) {
        p.predictAndTrain(0x300, eng.nextOutcome(churn, rt_churn));
        p.predictAndTrain(0x304, eng.nextOutcome(churn, rt_churn));
        bool taken = eng.nextOutcome(parity, rt_parity);
        bool pred = p.predictAndTrain(0x700, taken);
        if (i > n / 2) {
            correct += (pred == taken);
            ++counted;
        }
    }
    EXPECT_LT(correct / double(counted), 0.75);
}

TEST(Perceptron, ResetZeroesWeights)
{
    PerceptronPredictor p;
    BranchBehavior b = makeBehavior(BranchKind::Biased);
    b.biasTaken = 0.0;
    accuracyOn(p, b, 2000);
    p.reset();
    // Zero weights -> output 0 -> predict taken by convention.
    EXPECT_TRUE(p.predictAndTrain(0x4000, true));
}

TEST(Perceptron, ValidatesGeometry)
{
    EXPECT_THROW(PerceptronPredictor(100, 16), FatalError);
    EXPECT_THROW(PerceptronPredictor(512, 0), FatalError);
}

// --- BPU complex integration -------------------------------------------------------

TEST(BpuOrganizations, KindNames)
{
    EXPECT_STREQ(largePredictorKindName(LargePredictorKind::Tournament),
                 "tournament");
    EXPECT_STREQ(largePredictorKindName(LargePredictorKind::Agree),
                 "agree");
    EXPECT_STREQ(largePredictorKindName(LargePredictorKind::Perceptron),
                 "perceptron");
}

TEST(BpuOrganizations, AllKindsBeatSmallOnCorrelatedStreams)
{
    for (LargePredictorKind kind :
         {LargePredictorKind::Tournament, LargePredictorKind::Agree,
          LargePredictorKind::Perceptron}) {
        BpuParams params;
        params.largeKind = kind;
        BpuComplex bpu(params);

        BranchOutcomeEngine eng(21);
        BranchBehavior churn = makeBehavior(BranchKind::Random);
        BranchBehavior corr =
            makeBehavior(BranchKind::GlobalCorrelated);
        corr.historyMask = 0b1;  // linearly separable for all kinds
        BranchRuntime rt, rt_churn;
        auto step = [&]() {
            // Churn makes the correlated branch's input genuinely
            // random: the small bimodal predictor cannot track it.
            bpu.predict(0x800, eng.nextOutcome(churn, rt_churn),
                        0x1000);
            bpu.predict(0x900, eng.nextOutcome(corr, rt), 0x1000);
        };
        int n = 20000;
        for (int i = 0; i < n; ++i)
            step();
        bpu.resetWindowStats();
        for (int i = 0; i < 5000; ++i)
            step();

        // The window rates mix the easy churn branch with the hard
        // correlated one; the large side must still clearly win.
        EXPECT_LT(bpu.largeWindowMispredictRate(),
                  bpu.smallWindowMispredictRate() - 0.10)
            << largePredictorKindName(kind);
    }
}

TEST(BpuOrganizations, GatingWorksForAllKinds)
{
    for (LargePredictorKind kind :
         {LargePredictorKind::Agree, LargePredictorKind::Perceptron}) {
        BpuParams params;
        params.largeKind = kind;
        BpuComplex bpu(params);
        bpu.predict(0x100, true, 0x200);
        bpu.gateLargeOff();
        EXPECT_FALSE(bpu.largeOn());
        bpu.predict(0x100, true, 0x200);  // runs on the small side
        bpu.gateLargeOn();
        EXPECT_TRUE(bpu.largeOn());
    }
}
