/**
 * @file
 * Parameterized property tests: invariants swept across geometries,
 * policies, seeds and parameter ranges (TEST_P).
 */

#include <tuple>

#include <gtest/gtest.h>

#include "core/policy.hh"
#include "core/signature.hh"
#include "common/random.hh"
#include "power/gating_energy.hh"
#include "uarch/bimodal.hh"
#include "uarch/btb.hh"
#include "uarch/cache.hh"
#include "workload/generator.hh"
#include "workload/suites.hh"

using namespace powerchop;

// --- cache invariants over geometries -------------------------------------------

class CacheGeometry
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(CacheGeometry, HitsNeverExceedAccessesAndGatingConserves)
{
    auto [size_kb, assoc] = GetParam();
    CacheParams params{size_kb * 1024ull, assoc, 64};
    SetAssocCache c(params);
    Rng rng(size_kb * 31 + assoc);

    for (int i = 0; i < 5000; ++i)
        c.access(0x100000 + rng.below(256) * 64, rng.bernoulli(0.3));

    EXPECT_EQ(c.hits() + c.misses(), c.accesses());
    EXPECT_LE(c.validLineCount(), params.sizeBytes / params.lineBytes);

    // Way-gating to one way keeps at most numSets lines and never
    // invents lines.
    std::uint64_t before = c.validLineCount();
    c.setActiveWays(1);
    EXPECT_LE(c.validLineCount(), before);
    EXPECT_LE(c.validLineCount(), c.numSets());

    // Re-enabling all ways must not resurrect lines.
    std::uint64_t at_one = c.validLineCount();
    c.setActiveWays(assoc);
    EXPECT_EQ(c.validLineCount(), at_one);
}

TEST_P(CacheGeometry, WaySweepMonotoneCapacity)
{
    auto [size_kb, assoc] = GetParam();
    CacheParams params{size_kb * 1024ull, assoc, 64};

    // Hit rate over a fixed working set never decreases with more
    // ways (warmed, LRU, no gating churn).
    double prev_rate = -1.0;
    for (unsigned ways = 1; ways <= assoc; ways *= 2) {
        SetAssocCache c(params);
        c.setActiveWays(ways);
        Rng rng(7);
        const std::uint64_t lines = (size_kb * 1024ull / 64) / 2;
        for (int i = 0; i < 20000; ++i)
            c.access(0x1000000 + rng.below(lines) * 64, false);
        EXPECT_GE(c.hitRate() + 0.02, prev_rate);
        prev_rate = c.hitRate();
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(std::make_tuple(8u, 2u), std::make_tuple(32u, 4u),
                      std::make_tuple(64u, 8u), std::make_tuple(256u, 8u),
                      std::make_tuple(1024u, 8u),
                      std::make_tuple(16u, 16u)));

// --- policy encoding over the full 4-bit space -----------------------------------

class PolicyBits : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PolicyBits, DecodeEncodeStable)
{
    unsigned bits = GetParam();
    GatingPolicy p = GatingPolicy::decode(bits);
    // Idempotent under a decode/encode round trip.
    EXPECT_EQ(GatingPolicy::decode(p.encode()), p);
    // MLC field always one of the four legal states.
    EXPECT_TRUE(p.mlc == MlcPolicy::AllWays ||
                p.mlc == MlcPolicy::HalfWays ||
                p.mlc == MlcPolicy::QuarterWays ||
                p.mlc == MlcPolicy::OneWay);
}

INSTANTIATE_TEST_SUITE_P(AllBitPatterns, PolicyBits,
                         ::testing::Range(0u, 16u));

// --- signature canonicalization across permutations --------------------------------

class SignaturePermutation : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SignaturePermutation, OrderIndependent)
{
    Rng rng(GetParam());
    TranslationId ids[4];
    for (auto &id : ids)
        id = static_cast<TranslationId>(rng.below(1u << 30)) + 1;
    PhaseSignature ref(ids, 4);
    for (int shuffle = 0; shuffle < 8; ++shuffle) {
        TranslationId perm[4] = {ids[0], ids[1], ids[2], ids[3]};
        for (int k = 3; k > 0; --k)
            std::swap(perm[k], perm[rng.below(k + 1)]);
        EXPECT_EQ(PhaseSignature(perm, 4), ref);
        EXPECT_EQ(PhaseSignature(perm, 4).hash(), ref.hash());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SignaturePermutation,
                         ::testing::Range(1u, 17u));

// --- gating energy monotonicity ------------------------------------------------------

class GatingEnergySweep : public ::testing::TestWithParam<double>
{
};

TEST_P(GatingEnergySweep, MonotoneInPeakPower)
{
    double peak = GetParam();
    GatingEnergyParams p;
    double e1 = gatingOverheadEnergy(peak, 2e9, p);
    double e2 = gatingOverheadEnergy(peak * 2, 2e9, p);
    EXPECT_GT(e2, e1);
    EXPECT_GE(e1, 0.0);
    // Doubling frequency halves per-cycle energy.
    EXPECT_NEAR(gatingOverheadEnergy(peak, 4e9, p), e1 / 2, 1e-18);
}

INSTANTIATE_TEST_SUITE_P(Peaks, GatingEnergySweep,
                         ::testing::Values(0.1, 0.5, 1.0, 3.0, 8.0));

// --- RNG bound sweep -------------------------------------------------------------------

class RngBounds : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RngBounds, BelowAlwaysInBound)
{
    std::uint64_t bound = GetParam();
    Rng rng(bound * 2654435761u + 1);
    for (int i = 0; i < 2000; ++i)
        ASSERT_LT(rng.below(bound), bound);
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBounds,
                         ::testing::Values(1ull, 2ull, 3ull, 10ull,
                                           255ull, 256ull, 65536ull,
                                           1ull << 40));

// --- predictor table-size sweep ----------------------------------------------------------

class BimodalSizes : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(BimodalSizes, LearnsStronglyBiasedStream)
{
    BimodalPredictor p(GetParam());
    Rng rng(3);
    int correct = 0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
        bool taken = rng.bernoulli(0.97);
        correct += (p.predictAndTrain(0x100, taken) == taken);
    }
    EXPECT_GT(correct / double(n), 0.9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BimodalSizes,
                         ::testing::Values(16u, 64u, 256u, 1024u, 4096u));

// --- BTB geometry sweep --------------------------------------------------------------------

class BtbGeometry
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(BtbGeometry, StableTargetsAlwaysHitAfterWarmup)
{
    auto [entries, assoc] = GetParam();
    Btb btb(entries, assoc);
    // Up to `entries` distinct branches with stable targets.
    unsigned branches = entries / 2;
    for (unsigned round = 0; round < 3; ++round) {
        for (unsigned b = 0; b < branches; ++b) {
            bool hit = btb.predictAndUpdate(0x1000 + b * 4,
                                            0x90000 + b * 64);
            if (round > 0) {
                ASSERT_TRUE(hit) << "entries=" << entries;
            }
        }
    }
    EXPECT_EQ(btb.lookups(), 3u * branches);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, BtbGeometry,
    ::testing::Values(std::make_tuple(64u, 2u), std::make_tuple(256u, 4u),
                      std::make_tuple(1024u, 4u),
                      std::make_tuple(4096u, 8u)));

// --- workload generator determinism across all 29 apps --------------------------------------

class SuiteApps : public ::testing::TestWithParam<int>
{
};

TEST_P(SuiteApps, GeneratorDeterministicAndWellFormed)
{
    auto all = allWorkloads();
    const WorkloadSpec &spec = all[GetParam()];
    WorkloadGenerator g1(spec), g2(spec);
    for (int i = 0; i < 3000; ++i) {
        const DynInst &a = g1.next();
        const DynInst &b = g2.next();
        ASSERT_EQ(a.pc(), b.pc()) << spec.name;
        ASSERT_EQ(a.effAddr, b.effAddr) << spec.name;
        ASSERT_NE(a.si, nullptr);
    }
}

INSTANTIATE_TEST_SUITE_P(AllApps, SuiteApps, ::testing::Range(0, 29));
