/**
 * @file
 * Tests for the serving plane: the content-keyed result cache (LRU
 * eviction by bytes, journal warm start), the wire protocol
 * (request-line parsing, response framing over a real pipe), and
 * powerchopd end to end over a Unix-domain socket — including the
 * byte-identity guarantee against a direct runCampaign() report and
 * a SIGKILL-shaped warm restart from the cache journal.
 */

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>
#include <gtest/gtest.h>

#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/atomic_file.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/result_cache.hh"
#include "serve/server.hh"
#include "sim/campaign.hh"
#include "sim/machine_config.hh"
#include "sim/sim_runner.hh"
#include "workload/suites.hh"

using namespace powerchop;

namespace
{

std::string
freshDir(const std::string &name)
{
    const std::string dir = testing::TempDir() + "powerchop_serve_" +
        std::to_string(::getpid()) + "_" + name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

// ---------------------------------------------------------------------
// ResultCache
// ---------------------------------------------------------------------

TEST(ResultCache, PutGetAndCounters)
{
    ResultCache cache;
    std::string payload;
    EXPECT_FALSE(cache.get(1, &payload));
    cache.put(1, "one");
    cache.put(2, "two");
    ASSERT_TRUE(cache.get(1, &payload));
    EXPECT_EQ(payload, "one");
    EXPECT_TRUE(cache.get(1)) << "null payload pointer is allowed";

    const ResultCacheStats st = cache.stats();
    EXPECT_EQ(st.hits, 2u);
    EXPECT_EQ(st.misses, 1u);
    EXPECT_EQ(st.insertions, 2u);
    EXPECT_EQ(st.evictions, 0u);
    EXPECT_EQ(st.entries, 2u);
    EXPECT_GT(st.bytes, 0u);
    EXPECT_EQ(cache.warmStarted(), 0u);
}

TEST(ResultCache, RePutRefreshesWithoutDuplicating)
{
    ResultCache cache;
    cache.put(7, "payload");
    cache.put(7, "payload");
    const ResultCacheStats st = cache.stats();
    EXPECT_EQ(st.entries, 1u);
    EXPECT_EQ(st.insertions, 1u) << "re-put is a recency refresh";
}

TEST(ResultCache, EvictsLeastRecentlyUsedByBytes)
{
    // One shard, budget for ~3 entries (cost = payload + 64
    // bookkeeping bytes each).
    ResultCacheOptions opts;
    opts.shards = 1;
    opts.maxBytes = 3 * (100 + 64);
    ResultCache cache(opts);
    const std::string payload(100, 'p');
    cache.put(1, payload);
    cache.put(2, payload);
    cache.put(3, payload);
    EXPECT_EQ(cache.stats().entries, 3u);

    // Touch 1 so 2 becomes the LRU victim of the next insert.
    EXPECT_TRUE(cache.get(1));
    cache.put(4, payload);
    EXPECT_EQ(cache.stats().entries, 3u);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_FALSE(cache.get(2)) << "LRU entry must be the one evicted";
    EXPECT_TRUE(cache.get(1));
    EXPECT_TRUE(cache.get(3));
    EXPECT_TRUE(cache.get(4));
}

TEST(ResultCache, OversizedPayloadStillAdmitted)
{
    // A payload larger than the whole budget must be admitted (as
    // the sole resident entry), not bounce forever.
    ResultCacheOptions opts;
    opts.shards = 1;
    opts.maxBytes = 64;
    ResultCache cache(opts);
    cache.put(1, std::string(4096, 'x'));
    EXPECT_TRUE(cache.get(1));
    EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ResultCache, JournalWarmStartSurvivesRestart)
{
    const std::string dir = freshDir("cache-journal");
    ResultCacheOptions opts;
    opts.journalPath = dir + "/cache.jsonl";
    {
        ResultCache cache(opts);
        cache.put(0xa1, "alpha");
        cache.put(0xb2, "beta");
        cache.put(0xa1, "alpha"); // refresh: no duplicate record
    }
    // "SIGKILL": no graceful shutdown path exists at all — the
    // journal was written through on every put.
    ResultCache warm(opts);
    EXPECT_EQ(warm.warmStarted(), 2u);
    std::string payload;
    ASSERT_TRUE(warm.get(0xa1, &payload));
    EXPECT_EQ(payload, "alpha");
    ASSERT_TRUE(warm.get(0xb2, &payload));
    EXPECT_EQ(payload, "beta");

    const ResultCacheStats st = warm.stats();
    EXPECT_EQ(st.insertions, 0u)
        << "warm-start admissions are replays, not traffic";
    EXPECT_EQ(st.evictions, 0u);
    EXPECT_EQ(st.entries, 2u);
}

TEST(ResultCache, EvictionNeverErasesTheJournal)
{
    // Durability invariant: the journal is an append-only superset.
    // Evict everything from a tiny cache, then warm-start a roomy
    // one: every payload ever inserted must come back.
    const std::string dir = freshDir("cache-superset");
    ResultCacheOptions tiny;
    tiny.shards = 1;
    tiny.maxBytes = 2 * (50 + 64);
    tiny.journalPath = dir + "/cache.jsonl";
    {
        ResultCache cache(tiny);
        for (std::uint64_t k = 1; k <= 6; ++k)
            cache.put(k, std::string(50, 'a' + char(k)));
        EXPECT_GT(cache.stats().evictions, 0u);
        EXPECT_LT(cache.stats().entries, 6u);
    }
    ResultCacheOptions roomy = tiny;
    roomy.maxBytes = 1u << 20;
    ResultCache warm(roomy);
    EXPECT_EQ(warm.warmStarted(), 6u);
    for (std::uint64_t k = 1; k <= 6; ++k)
        EXPECT_TRUE(warm.get(k)) << k;
}

// ---------------------------------------------------------------------
// Protocol
// ---------------------------------------------------------------------

TEST(Protocol, ParsesTheThreeVerbs)
{
    Request r = parseRequestLine("GET 00deadbeefcafe12");
    EXPECT_EQ(r.verb, RequestVerb::Get);
    EXPECT_EQ(r.key, 0x00deadbeefcafe12ull);

    r = parseRequestLine("GET f");
    EXPECT_EQ(r.verb, RequestVerb::Get) << "short keys are legal";
    EXPECT_EQ(r.key, 0xfull);

    r = parseRequestLine("SIM {\"workloads\":[\"x\"]}");
    EXPECT_EQ(r.verb, RequestVerb::Sim);
    EXPECT_EQ(r.spec, "{\"workloads\":[\"x\"]}");

    r = parseRequestLine("STATS");
    EXPECT_EQ(r.verb, RequestVerb::Stats);
}

TEST(Protocol, MalformedLinesParseToBadWithAReason)
{
    for (const char *line :
         {"", "GET", "GET ", "GET xyz", "GET 123g",
          "GET 00112233445566778", // 17 hex digits
          "get 12", "PUT 12", "STATS now", "SIMX {}", "SIM "}) {
        const Request r = parseRequestLine(line);
        EXPECT_EQ(r.verb, RequestVerb::Bad) << "line: " << line;
        EXPECT_FALSE(r.error.empty()) << "line: " << line;
    }
}

TEST(Protocol, FormatSimSpecMatchesTheGrammar)
{
    const std::string spec = formatSimSpec(
        {"perlbench", "namd"}, {"server"}, {"full-power"}, 200'000,
        0);
    json::Value v;
    ASSERT_TRUE(json::parse(spec, v)) << spec;
    EXPECT_EQ(v.find("workloads")->elements().size(), 2u);
    EXPECT_EQ(v.getUint64("insns"), 200'000u);
    EXPECT_EQ(spec.find('\n'), std::string::npos)
        << "specs must be single-line (the framing is line-based)";
}

TEST(Protocol, ResponseFramingRoundTripsOverAPipe)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    // Payload with embedded newlines and a NUL: the length prefix
    // must carry it verbatim.
    std::string payload = "line1\nline2\n";
    payload += '\0';
    payload += "tail";
    ASSERT_TRUE(writeResponse(fds[1], ResponseStatus::Ok, payload));
    ASSERT_TRUE(
        writeResponse(fds[1], ResponseStatus::Miss, ""));
    ::close(fds[1]);

    FdReader reader(fds[0]);
    ResponseStatus status;
    std::string got;
    ASSERT_TRUE(readResponse(reader, status, got));
    EXPECT_EQ(status, ResponseStatus::Ok);
    EXPECT_EQ(got, payload);
    ASSERT_TRUE(readResponse(reader, status, got));
    EXPECT_EQ(status, ResponseStatus::Miss);
    EXPECT_TRUE(got.empty());
    EXPECT_FALSE(readResponse(reader, status, got)) << "EOF";
    ::close(fds[0]);
}

TEST(Protocol, ReadResponseRejectsOversizedAndMalformedFrames)
{
    const auto feed = [](const std::string &bytes,
                         std::size_t maxPayload) {
        int fds[2];
        EXPECT_EQ(::pipe(fds), 0);
        EXPECT_TRUE(writeAllFd(fds[1], bytes));
        ::close(fds[1]);
        FdReader reader(fds[0]);
        ResponseStatus status;
        std::string payload;
        const bool ok =
            readResponse(reader, status, payload, maxPayload);
        ::close(fds[0]);
        return ok;
    };
    EXPECT_FALSE(feed("BOGUS 3\nabc", 1024));
    EXPECT_FALSE(feed("OK notanumber\n", 1024));
    EXPECT_FALSE(feed("OK 3\nab", 1024)) << "truncated payload";
    EXPECT_FALSE(feed("OK 4096\n", 16)) << "over maxPayload";
    EXPECT_TRUE(feed("HIT 2\nhi", 1024));
}

// ---------------------------------------------------------------------
// SimServer end to end (Unix-domain socket)
// ---------------------------------------------------------------------

/** A live daemon on a background thread, stopped on destruction. */
class ServerFixture
{
  public:
    explicit ServerFixture(ServeOptions opts)
        : opts_(std::move(opts))
    {
        opts_.stopFlag = &stop_;
        server_ = std::make_unique<SimServer>(opts_);
        thread_ = std::thread([this] { report_ = server_->run(); });
    }

    ~ServerFixture() { stopAndJoin(); }

    const ServeReport &
    stopAndJoin()
    {
        if (thread_.joinable()) {
            stop_.store(true);
            thread_.join();
        }
        return report_;
    }

    ServeClient
    client() const
    {
        ServeClient c;
        std::string err;
        // The accept loop may still be a poll-tick away from the
        // first listen backlog drain; connect() itself succeeds as
        // soon as the (already bound) socket exists.
        EXPECT_TRUE(c.connectUnix(opts_.socketPath, &err)) << err;
        return c;
    }

  private:
    ServeOptions opts_;
    std::atomic<bool> stop_{false};
    std::unique_ptr<SimServer> server_;
    std::thread thread_;
    ServeReport report_;
};

ServeOptions
unixOptions(const std::string &dir)
{
    ServeOptions opts;
    opts.socketPath = dir + "/powerchopd.sock";
    opts.cache.journalPath = dir + "/cache.jsonl";
    opts.runnerThreads = 2;
    return opts;
}

/** The tiny matrix every end-to-end test serves. */
const std::vector<std::string> kWorkloads = {"perlbench"};
const std::vector<std::string> kMachines = {"server"};
const std::vector<std::string> kModes = {"full-power", "powerchop"};
constexpr std::uint64_t kInsns = 30'000;

std::string
tinySpec()
{
    return formatSimSpec(kWorkloads, kMachines, kModes, kInsns, 0);
}

std::vector<SimJob>
tinyJobs()
{
    std::vector<SimJob> jobs;
    for (const std::string &mode : kModes) {
        SimJob job;
        job.workload = findWorkload(kWorkloads[0]);
        job.machine = serverConfig();
        EXPECT_TRUE(mode == "full-power" || mode == "powerchop");
        job.opts.mode = mode == "full-power" ? SimMode::FullPower
                                             : SimMode::PowerChop;
        job.opts.maxInstructions = kInsns;
        jobs.push_back(std::move(job));
    }
    return jobs;
}

TEST(SimServer, SimMissThenHitServesIdenticalBytes)
{
    const std::string dir = freshDir("sim");
    ServerFixture server(unixOptions(dir));
    ServeClient c = server.client();

    const ServeReply cold = c.sim(tinySpec());
    ASSERT_FALSE(cold.ioFailed);
    ASSERT_EQ(cold.status, ResponseStatus::Ok)
        << "cold matrix simulates fresh: " << cold.payload;
    json::Value v;
    // reportJson is a JSON document; it must parse and report all ok.
    ASSERT_TRUE(json::parse(cold.payload, v)) << cold.payload;
    EXPECT_EQ(v.find("campaign")->getUint64("jobs"), 2u);
    EXPECT_EQ(v.find("campaign")->getUint64("ok"), 2u);

    const ServeReply warmReply = c.sim(tinySpec());
    ASSERT_FALSE(warmReply.ioFailed);
    EXPECT_EQ(warmReply.status, ResponseStatus::Hit)
        << "fully cached matrix must not resimulate";
    EXPECT_EQ(warmReply.payload, cold.payload)
        << "hits must serve byte-identical reports";

    const ServeReport &rep = server.stopAndJoin();
    EXPECT_EQ(rep.sims, 2u);
    EXPECT_EQ(rep.simulatedJobs, 2u) << "second SIM was all hits";
    EXPECT_EQ(rep.cache.hits, 2u);
    EXPECT_EQ(rep.cache.misses, 2u);
}

TEST(SimServer, ServedReportIsByteIdenticalToDirectCampaign)
{
    // The tentpole acceptance criterion, in-process: SIM payload ==
    // the report.json a direct runCampaign of the same matrix writes.
    const std::string dir = freshDir("identity");
    std::filesystem::create_directories(dir + "/daemon");
    std::string served;
    {
        ServerFixture server(unixOptions(dir + "/daemon"));
        ServeClient c = server.client();
        const ServeReply reply = c.sim(tinySpec());
        ASSERT_FALSE(reply.ioFailed);
        ASSERT_EQ(reply.status, ResponseStatus::Ok) << reply.payload;
        served = reply.payload;
    }

    SimJobRunner runner(2);
    const CampaignResult direct =
        runCampaign(runner, tinyJobs(), dir + "/direct", {});
    ASSERT_TRUE(direct.complete());
    EXPECT_EQ(served, readFile(dir + "/direct/report.json"));
}

TEST(SimServer, GetServesCachedSingleResults)
{
    const std::string dir = freshDir("get");
    ServerFixture server(unixOptions(dir));
    ServeClient c = server.client();

    const std::vector<SimJob> jobs = tinyJobs();
    const std::uint64_t key = campaignJobKey(jobs[0]);
    EXPECT_EQ(c.get(key).status, ResponseStatus::Miss)
        << "nothing cached yet";

    ASSERT_TRUE(c.sim(tinySpec()).served());
    const ServeReply hit = c.get(key);
    ASSERT_EQ(hit.status, ResponseStatus::Hit);
    json::Value v;
    ASSERT_TRUE(json::parse(hit.payload, v)) << hit.payload;
    EXPECT_EQ(v.getString("workload"), "perlbench");
    EXPECT_EQ(v.getString("mode"), "full-power");
    EXPECT_EQ(c.get(~key).status, ResponseStatus::Miss);
}

TEST(SimServer, StatsReportLiveCounters)
{
    const std::string dir = freshDir("stats");
    ServerFixture server(unixOptions(dir));
    ServeClient c = server.client();

    ASSERT_TRUE(c.sim(tinySpec()).served());
    c.get(campaignJobKey(tinyJobs()[0]));
    const ServeReply stats = c.stats();
    ASSERT_EQ(stats.status, ResponseStatus::Ok);
    json::Value v;
    ASSERT_TRUE(json::parse(stats.payload, v)) << stats.payload;
    EXPECT_EQ(v.getString("schema"), "powerchop-serve-stats-v1");
    EXPECT_EQ(v.getUint64("sims"), 1u);
    EXPECT_EQ(v.getUint64("gets"), 1u);
    EXPECT_EQ(v.getUint64("simulated_jobs"), 2u);
    EXPECT_EQ(v.getUint64("hits"), 1u);
    EXPECT_EQ(v.getUint64("entries"), 2u);
    EXPECT_GT(v.getUint64("bytes"), 0u);
    EXPECT_GT(v.find("request_latency_ms")->getUint64("samples"),
              0u);
}

TEST(SimServer, BadRequestsAnswerErrAndKeepServing)
{
    const std::string dir = freshDir("err");
    ServerFixture server(unixOptions(dir));
    ServeClient c = server.client();

    // Unknown workload, unknown mode, non-JSON, bad verb: each is an
    // ERR with a reason — and the connection survives all of them.
    ServeReply r = c.sim(
        "{\"workloads\":[\"no-such-workload\"],\"machines\":"
        "[\"server\"],\"modes\":[\"full-power\"]}");
    EXPECT_EQ(r.status, ResponseStatus::Err);
    EXPECT_NE(r.payload.find("no-such-workload"), std::string::npos);

    r = c.sim("{\"workloads\":[\"perlbench\"],\"machines\":"
              "[\"server\"],\"modes\":[\"warp-speed\"]}");
    EXPECT_EQ(r.status, ResponseStatus::Err);

    r = c.sim("not json at all");
    EXPECT_EQ(r.status, ResponseStatus::Err);

    r = c.sim(tinySpec().substr(0, 20));
    EXPECT_EQ(r.status, ResponseStatus::Err) << "truncated spec";

    // A duplicate matrix entry is refused before simulating.
    r = c.sim(formatSimSpec({"perlbench", "perlbench"}, {"server"},
                            {"full-power"}, kInsns, 0));
    EXPECT_EQ(r.status, ResponseStatus::Err);
    EXPECT_NE(r.payload.find("duplicate"), std::string::npos);

    EXPECT_TRUE(c.stats().served()) << "connection still alive";
    const ServeReport &rep = server.stopAndJoin();
    EXPECT_EQ(rep.errors, 5u);
    EXPECT_EQ(rep.simulatedJobs, 0u)
        << "no bad request may reach the runner";
}

TEST(SimServer, WarmRestartServesHitsFromTheJournal)
{
    const std::string dir = freshDir("warm");
    std::string cold;
    {
        // First daemon lifetime: populate, then die without any
        // graceful cache flush (there is none to call).
        ServerFixture server(unixOptions(dir));
        ServeClient c = server.client();
        const ServeReply reply = c.sim(tinySpec());
        ASSERT_TRUE(reply.served());
        cold = reply.payload;
    }
    {
        // Second lifetime over the same dir: the journal must warm-
        // start the cache, and the same SIM must be a pure HIT with
        // byte-identical payload and zero fresh simulation.
        ServerFixture server(unixOptions(dir));
        ServeClient c = server.client();
        const ServeReply warm = c.sim(tinySpec());
        ASSERT_FALSE(warm.ioFailed);
        EXPECT_EQ(warm.status, ResponseStatus::Hit);
        EXPECT_EQ(warm.payload, cold);
        const ServeReport &rep = server.stopAndJoin();
        EXPECT_EQ(rep.warmStarted, 2u);
        EXPECT_EQ(rep.simulatedJobs, 0u);
    }
}

TEST(SimServer, ConcurrentClientsShareTheCache)
{
    const std::string dir = freshDir("concurrent");
    ServerFixture server(unixOptions(dir));

    // One client populates; N clients then hammer GETs and SIMs
    // concurrently. Every reply must be served and byte-identical.
    std::string expect;
    {
        ServeClient c = server.client();
        const ServeReply reply = c.sim(tinySpec());
        ASSERT_TRUE(reply.served());
        expect = reply.payload;
    }
    std::atomic<unsigned> mismatches{0}, failures{0};
    std::vector<std::thread> clients;
    for (unsigned t = 0; t < 4; ++t) {
        clients.emplace_back([&] {
            ServeClient c;
            if (!c.connectUnix(dir + "/powerchopd.sock")) {
                failures.fetch_add(1);
                return;
            }
            for (int i = 0; i < 20; ++i) {
                const ServeReply reply = c.sim(tinySpec());
                if (!reply.served())
                    failures.fetch_add(1);
                else if (reply.payload != expect)
                    mismatches.fetch_add(1);
            }
        });
    }
    for (auto &t : clients)
        t.join();
    EXPECT_EQ(failures.load(), 0u);
    EXPECT_EQ(mismatches.load(), 0u);
    const ServeReport &rep = server.stopAndJoin();
    EXPECT_EQ(rep.simulatedJobs, 2u) << "only the initial misses";
}

// ---------------------------------------------------------------------
// Hardening: framing, backoff, compaction, deadlines, shedding, drain
// ---------------------------------------------------------------------

TEST(Protocol, BusyFramingRoundTrips)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    const std::string reason = "connection cap (4) reached\n";
    ASSERT_TRUE(
        writeResponse(fds[1], ResponseStatus::Busy, reason));
    ::close(fds[1]);
    FdReader reader(fds[0]);
    ResponseStatus status;
    std::string payload;
    ASSERT_TRUE(readResponse(reader, status, payload));
    EXPECT_EQ(status, ResponseStatus::Busy);
    EXPECT_EQ(payload, reason);
    ::close(fds[0]);
}

TEST(Protocol, ClientRetryBackoffIsDeterministicAndBounded)
{
    ClientRetryPolicy policy;
    policy.backoffBaseSeconds = 0.05;
    policy.backoffMaxSeconds = 0.4;
    policy.backoffJitterFraction = 0.25;
    policy.seed = 42;

    // Attempt 1 is the first try: no wait before it.
    EXPECT_EQ(clientRetryBackoffSeconds(policy, 1), 0.0);
    // A pure function of (policy, attempt): same inputs, same wait.
    for (unsigned a = 2; a <= 8; ++a) {
        const double d = clientRetryBackoffSeconds(policy, a);
        EXPECT_EQ(d, clientRetryBackoffSeconds(policy, a)) << a;
        EXPECT_GE(d, 0.05) << a;
        EXPECT_LE(d, 0.4 * 1.25) << "cap + jitter ceiling, " << a;
    }
    // Doubling below the cap: attempt 3 waits longer than attempt 2.
    EXPECT_GT(clientRetryBackoffSeconds(policy, 3),
              clientRetryBackoffSeconds(policy, 2));
    // Different seeds decorrelate the jitter.
    ClientRetryPolicy other = policy;
    other.seed = 43;
    EXPECT_NE(clientRetryBackoffSeconds(policy, 4),
              clientRetryBackoffSeconds(other, 4));
    // Disabled backoff waits nowhere.
    ClientRetryPolicy off = policy;
    off.backoffBaseSeconds = 0;
    EXPECT_EQ(clientRetryBackoffSeconds(off, 5), 0.0);
}

TEST(ResultCache, CompactionShrinksJournalAndWarmStartsIdentical)
{
    const std::string dir = freshDir("cache-compact");
    ResultCacheOptions opts;
    opts.shards = 1;
    opts.maxBytes = 3 * (50 + 64); // three residents
    opts.journalPath = dir + "/cache.jsonl";
    opts.compactDeadRatio = 0.4;
    opts.compactMinRecords = 6;

    ResultCache cache(opts);
    const auto payloadFor = [](std::uint64_t k) {
        return std::string(50, static_cast<char>('a' + k));
    };
    for (std::uint64_t k = 1; k <= 10; ++k)
        cache.put(k, payloadFor(k));

    // Ten appends against three residents crosses the dead ratio
    // repeatedly; without compaction the file would hold 10 records.
    const ResultCacheStats st = cache.stats();
    EXPECT_GE(st.compactions, 1u);
    EXPECT_LT(st.journalRecords, 10u);
    EXPECT_LT(st.journalDeadRecords, st.journalRecords);
    EXPECT_EQ(st.entries, 3u);

    // The physical file agrees with the accounting.
    const std::string journal = readFile(opts.journalPath);
    std::uint64_t lines = 0;
    for (char c : journal)
        lines += c == '\n';
    EXPECT_EQ(lines, st.journalRecords);

    // Compaction invariant: the compacted journal warm-starts to the
    // identical cache — same residents, same payload bytes — as the
    // uncompacted one would have (the most recent inserts win).
    ResultCache warmTiny(opts);
    for (std::uint64_t k = 1; k <= 10; ++k) {
        std::string fromOld, fromNew;
        const bool liveOld = cache.get(k, &fromOld);
        const bool liveNew = warmTiny.get(k, &fromNew);
        EXPECT_EQ(liveOld, liveNew) << k;
        if (liveOld) {
            EXPECT_EQ(fromOld, fromNew) << k;
        }
    }
    EXPECT_TRUE(warmTiny.get(10));
    EXPECT_FALSE(warmTiny.get(1)) << "dead records stay dead";

    // A roomy warm start admits every record still on disk.
    ResultCacheOptions roomy = opts;
    roomy.maxBytes = 1u << 20;
    ResultCache warmRoomy(roomy);
    EXPECT_EQ(warmRoomy.warmStarted(), st.journalRecords);
}

/** Raw connect, bypassing ServeClient: hostile-client tests want the
 *  socket without the protocol niceties. @return fd or -1. */
int
rawConnectUnix(const std::string &path)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    struct sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

TEST(SimServer, IdleConnectionIsReaped)
{
    const std::string dir = freshDir("idle-reap");
    ServeOptions opts = unixOptions(dir);
    opts.idleTimeoutSeconds = 0.15;
    ServerFixture server(opts);

    // Connect and send nothing: the idle deadline must EOF us.
    const int fd = rawConnectUnix(opts.socketPath);
    ASSERT_GE(fd, 0);
    FdReader reader(fd);
    reader.setPollTimeoutMs(5000);
    std::string line;
    EXPECT_FALSE(reader.readLine(line));
    EXPECT_EQ(reader.outcome(), ReadOutcome::Eof)
        << "idle connections are closed quietly, not answered";
    ::close(fd);

    const ServeReport &rep = server.stopAndJoin();
    EXPECT_EQ(rep.idleReaped, 1u);
    EXPECT_EQ(rep.requests, 0u);
}

TEST(SimServer, HalfFrameHitsReadDeadlineAndServingContinues)
{
    const std::string dir = freshDir("half-frame");
    ServeOptions opts = unixOptions(dir);
    opts.idleTimeoutSeconds = 10;  // generous: not what fires here
    opts.readTimeoutSeconds = 0.15;
    ServerFixture server(opts);

    // Send half a request line, then hang: the mid-frame deadline
    // answers ERR deadline and hangs up.
    const int fd = rawConnectUnix(opts.socketPath);
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(writeAllFd(fd, "SIM {\"wor"));
    FdReader reader(fd);
    reader.setPollTimeoutMs(5000);
    ResponseStatus status;
    std::string payload;
    ASSERT_TRUE(readResponse(reader, status, payload));
    EXPECT_EQ(status, ResponseStatus::Err);
    EXPECT_NE(payload.find("deadline"), std::string::npos)
        << payload;
    std::string rest;
    EXPECT_FALSE(reader.readLine(rest)) << "then the daemon hangs up";
    ::close(fd);

    // The daemon itself is unharmed.
    ServeClient c = server.client();
    EXPECT_TRUE(c.stats().served());
    const ServeReport &rep = server.stopAndJoin();
    EXPECT_EQ(rep.readTimeouts, 1u);
    EXPECT_EQ(rep.idleReaped, 0u);
}

TEST(SimServer, OverCapConnectionsAreShedWithBusy)
{
    const std::string dir = freshDir("conn-cap");
    ServeOptions opts = unixOptions(dir);
    opts.maxConnections = 2;
    ServerFixture server(opts);

    // Two well-behaved connections occupy the cap (the STATS round
    // trips guarantee both are accepted, not just queued).
    ServeClient c1 = server.client();
    ServeClient c2 = server.client();
    ASSERT_TRUE(c1.stats().served());
    ASSERT_TRUE(c2.stats().served());

    // The third is shed with BUSY at the accept gate, unprompted.
    const int fd = rawConnectUnix(opts.socketPath);
    ASSERT_GE(fd, 0);
    FdReader reader(fd);
    reader.setPollTimeoutMs(5000);
    ResponseStatus status;
    std::string payload;
    ASSERT_TRUE(readResponse(reader, status, payload));
    EXPECT_EQ(status, ResponseStatus::Busy);
    EXPECT_NE(payload.find("connection cap"), std::string::npos);
    std::string rest;
    EXPECT_FALSE(reader.readLine(rest)) << "shed means closed";
    ::close(fd);

    // The earlier connections are unaffected, and STATS admits what
    // happened.
    const ServeReply stats = c1.stats();
    ASSERT_TRUE(stats.served());
    json::Value v;
    ASSERT_TRUE(json::parse(stats.payload, v)) << stats.payload;
    EXPECT_EQ(v.getUint64("shed_connections"), 1u);
    EXPECT_TRUE(c2.stats().served());
    const ServeReport &rep = server.stopAndJoin();
    EXPECT_EQ(rep.shedConnections, 1u);
}

TEST(SimServer, SimAdmissionQueueShedsWithBusy)
{
    const std::string dir = freshDir("admission");
    ServeOptions opts = unixOptions(dir);
    opts.simQueueDepth = 1;
    ServerFixture server(opts);

    // Four distinct SIM misses fired simultaneously against a depth-1
    // admission queue: at least one runs, at least one is shed, and
    // nothing hangs or crashes. (Exact counts depend on arrival
    // interleaving; the invariant is ok + busy == all, busy >= 1.)
    constexpr unsigned kClients = 4;
    std::vector<ServeClient> clients(kClients);
    for (unsigned t = 0; t < kClients; ++t) {
        ASSERT_TRUE(
            clients[t].connectUnix(dir + "/powerchopd.sock"));
    }
    std::atomic<unsigned> ok{0}, busy{0}, other{0};
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kClients; ++t) {
        threads.emplace_back([&, t] {
            const ServeReply reply = clients[t].sim(formatSimSpec(
                kWorkloads, kMachines, {"full-power"},
                5'000'000 + t, 0));
            if (reply.status == ResponseStatus::Ok)
                ok.fetch_add(1);
            else if (reply.status == ResponseStatus::Busy)
                busy.fetch_add(1);
            else
                other.fetch_add(1);
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(ok.load() + busy.load(), kClients);
    EXPECT_EQ(other.load(), 0u);
    EXPECT_GE(ok.load(), 1u);
    EXPECT_GE(busy.load(), 1u);
    const ServeReport &rep = server.stopAndJoin();
    EXPECT_EQ(rep.shedRequests, busy.load());
}

TEST(SimServer, RequestDeadlineCancelsAnInFlightSim)
{
    const std::string dir = freshDir("req-deadline");
    ServeOptions opts = unixOptions(dir);
    opts.requestDeadlineSeconds = 0.08;
    ServerFixture server(opts);
    ServeClient c = server.client();

    // A sim far larger than the deadline allows: the wall deadline
    // must cancel it cooperatively and answer ERR deadline.
    const ServeReply reply = c.sim(formatSimSpec(
        kWorkloads, kMachines, {"full-power"}, 500'000'000, 0));
    ASSERT_FALSE(reply.ioFailed) << reply.error;
    EXPECT_EQ(reply.status, ResponseStatus::Err);
    EXPECT_NE(reply.payload.find("deadline"), std::string::npos)
        << reply.payload;

    // The connection survives its cancelled request.
    EXPECT_TRUE(c.stats().served());
    const ServeReport &rep = server.stopAndJoin();
    EXPECT_GE(rep.deadlineCancels, 1u);
}

TEST(SimServer, GracefulDrainFinishesInFlightRequests)
{
    const std::string dir = freshDir("drain");
    ServeOptions opts = unixOptions(dir);
    opts.drainSeconds = 10;
    ServerFixture server(opts);

    // Launch a fresh sim, then raise the stop flag while it is (very
    // likely still) in flight: drain must let it finish and deliver.
    // Connect before the clock starts so the dial cannot race the
    // listen socket closing.
    ServeClient c = server.client();
    ServeReply reply;
    std::thread inflight([&] { reply = c.sim(tinySpec()); });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const ServeReport &rep = server.stopAndJoin();
    inflight.join();
    ASSERT_FALSE(reply.ioFailed) << reply.error;
    EXPECT_EQ(reply.status, ResponseStatus::Ok) << reply.payload;
    EXPECT_EQ(rep.droppedInFlight, 0u)
        << "drain must not abandon an in-flight request";
}

TEST(SimServer, ClientRetriesAcrossAServerRestart)
{
    const std::string dir = freshDir("client-retry");
    ClientRetryPolicy policy;
    policy.retries = 4;
    policy.backoffBaseSeconds = 0.05;
    policy.backoffMaxSeconds = 0.2;
    policy.seed = 7;

    ServeClient c;
    c.setRetryPolicy(policy);
    std::string cold;
    {
        ServerFixture server(unixOptions(dir));
        ASSERT_TRUE(c.connectUnix(dir + "/powerchopd.sock"));
        const ServeReply reply = c.sim(tinySpec());
        ASSERT_TRUE(reply.served()) << reply.error;
        EXPECT_EQ(reply.attempts, 1u);
        cold = reply.payload;
    }
    // The daemon restarted behind the client's back (same dir, so the
    // journal warm-starts the cache). The stale connection fails the
    // first attempt; the retry redials and is served a byte-identical
    // HIT.
    ServerFixture server(unixOptions(dir));
    const ServeReply warm = c.sim(tinySpec());
    ASSERT_TRUE(warm.served()) << warm.error;
    EXPECT_EQ(warm.status, ResponseStatus::Hit);
    EXPECT_EQ(warm.payload, cold);
    EXPECT_GE(warm.attempts, 2u)
        << "the dead socket must cost at least one attempt";
}

TEST(SimServer, TcpLoopbackServesTheSameProtocol)
{
    const std::string dir = freshDir("tcp");
    ServeOptions opts;
    opts.cache.journalPath = dir + "/cache.jsonl";
    opts.runnerThreads = 1;
    // port 0 selects the Unix transport, so an ephemeral bind isn't
    // expressible; probe a few unlikely high ports instead.
    std::unique_ptr<ServerFixture> server;
    for (unsigned short port : {38471, 45929, 52363}) {
        opts.port = port;
        try {
            server = std::make_unique<ServerFixture>(opts);
            break;
        } catch (const IoError &) {
            // Port taken; try the next candidate.
        }
    }
    if (!server)
        GTEST_SKIP() << "no loopback port available";

    ServeClient c;
    std::string err;
    ASSERT_TRUE(c.connectTcp(opts.port, &err)) << err;
    EXPECT_TRUE(c.stats().served());
}

} // namespace
