/**
 * @file
 * Tests for process-isolated sharded campaigns: deterministic
 * key-range partitioning, the shard worker run loop, and end-to-end
 * supervision through the real CLI binary — crash containment
 * (SIGSEGV / SIGKILL of workers mid-run), restart-with-backoff,
 * resume, and the byte-identical merged report guarantee.
 *
 * The end-to-end tests re-exec the installed CLI
 * (POWERCHOP_CLI_PATH, injected by CMake) exactly the way a user
 * would run `powerchop campaign --shards N`.
 */

#include <algorithm>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <gtest/gtest.h>

#include <unistd.h>

#include "common/journal.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/subprocess.hh"
#include "sim/campaign.hh"
#include "sim/shard_supervisor.hh"
#include "sim/statusboard.hh"
#include "sim/sim_runner.hh"
#include "workload/spec_io.hh"
#include "workload/suites.hh"

using namespace powerchop;

namespace
{

std::string
freshDir(const std::string &name)
{
    const std::string dir = testing::TempDir() + "powerchop_shard_" +
        std::to_string(::getpid()) + "_" + name;
    std::filesystem::remove_all(dir);
    return dir;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

WorkloadSpec
smallWorkload(unsigned seed)
{
    WorkloadSpec w;
    w.name = "shardwl-" + std::to_string(seed);
    w.seed = seed;
    PhaseSpec compute;
    compute.name = "compute";
    compute.simdFrac = 0.05;
    PhaseSpec memory;
    memory.name = "memory";
    memory.memFrac = 0.32;
    memory.mem.workingSetBytes = 256 * 1024;
    memory.mem.hotRegionFrac = 0.8;
    memory.mem.randomFrac = 0.5;
    w.phases = {compute, memory};
    w.schedule = {{0, 60'000}, {1, 90'000}};
    return w;
}

constexpr InsnCount kInsns = 30'000;

/** The matrix a CLI invocation with `--workloads <files> --machine
 *  server --modes full-power,powerchop --insns kInsns` builds —
 *  duplicated here so tests can compute the same content keys the
 *  worker processes will. */
std::vector<SimJob>
cliMatrix(const std::vector<std::string> &specFiles)
{
    std::vector<SimJob> jobs;
    for (const auto &path : specFiles) {
        for (SimMode mode :
             {SimMode::FullPower, SimMode::PowerChop}) {
            SimJob job;
            job.workload = loadWorkloadSpec(path);
            job.machine = serverConfig();
            job.opts.mode = mode;
            job.opts.maxInstructions = kInsns;
            jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

/** Write `n` small workload specs into `dir` and return their paths
 *  plus the --workloads CSV naming them. */
std::vector<std::string>
writeSpecs(const std::string &dir, std::size_t n)
{
    std::filesystem::create_directories(dir);
    std::vector<std::string> files;
    for (std::size_t i = 0; i < n; ++i) {
        const std::string path =
            dir + "/wl" + std::to_string(i) + ".wl";
        saveWorkloadSpec(smallWorkload(static_cast<unsigned>(i + 1)),
                         path);
        files.push_back(path);
    }
    return files;
}

std::string
csv(const std::vector<std::string> &items)
{
    std::string out;
    for (const auto &s : items)
        out += (out.empty() ? "" : ",") + s;
    return out;
}

/** Run the real CLI; returns its ExitStatus and captures stdout. */
ExitStatus
runCli(const std::vector<std::string> &args,
       const std::vector<std::string> &extraEnv = {},
       std::string *out = nullptr)
{
    SpawnOptions opts;
    opts.argv = {POWERCHOP_CLI_PATH};
    opts.argv.insert(opts.argv.end(), args.begin(), args.end());
    opts.extraEnv = extraEnv;
    Subprocess p;
    p.spawn(opts);
    p.closeStdin();
    std::string drained;
    const ExitStatus st = p.wait(300.0, &drained);
    EXPECT_FALSE(st.running()) << "CLI run timed out";
    if (out)
        *out = drained;
    return st;
}

std::vector<std::string>
campaignArgs(const std::string &dir,
             const std::vector<std::string> &specFiles)
{
    return {"campaign",  dir,
            "--workloads", csv(specFiles),
            "--machine", "server",
            "--modes",   "full-power,powerchop",
            "--insns",   std::to_string(kInsns)};
}

// ---------------------------------------------------------------------
// Partitioning
// ---------------------------------------------------------------------

TEST(Partition, CoversEveryIndexExactlyOnce)
{
    const std::vector<std::uint64_t> keys = {
        0x9u, 0x2u, 0xff00u, 0x1u, 0x80u, 0x7u, 0xabcdu};
    const auto parts = partitionByKeyRange(keys, 3);
    ASSERT_EQ(parts.size(), 3u);
    std::set<std::size_t> seen;
    for (const auto &part : parts) {
        for (std::size_t idx : part)
            EXPECT_TRUE(seen.insert(idx).second) << "index twice";
    }
    EXPECT_EQ(seen.size(), keys.size());
}

TEST(Partition, ShardsOwnContiguousKeyRanges)
{
    const std::vector<std::uint64_t> keys = {
        50, 10, 90, 20, 70, 30, 80, 40};
    const auto parts = partitionByKeyRange(keys, 4);
    std::uint64_t prev_max = 0;
    for (const auto &part : parts) {
        ASSERT_FALSE(part.empty());
        std::uint64_t lo = UINT64_MAX, hi = 0;
        for (std::size_t idx : part) {
            lo = std::min(lo, keys[idx]);
            hi = std::max(hi, keys[idx]);
        }
        EXPECT_GE(lo, prev_max) << "ranges must not interleave";
        prev_max = hi;
    }
}

TEST(Partition, DeterministicAndNearEqual)
{
    std::vector<std::uint64_t> keys;
    for (std::uint64_t i = 0; i < 103; ++i)
        keys.push_back(i * 0x9e3779b97f4a7c15ull); // scrambled order
    const auto a = partitionByKeyRange(keys, 8);
    const auto b = partitionByKeyRange(keys, 8);
    EXPECT_EQ(a, b) << "partition must be a pure function";
    for (const auto &part : a) {
        EXPECT_GE(part.size(), 103u / 8);
        EXPECT_LE(part.size(), 103u / 8 + 1);
    }
}

TEST(Partition, ClampsShardsToJobCount)
{
    const std::vector<std::uint64_t> keys = {5, 3};
    const auto parts = partitionByKeyRange(keys, 16);
    EXPECT_EQ(parts.size(), 2u);
    EXPECT_TRUE(partitionByKeyRange({}, 4).size() <= 1u);
}

TEST(Partition, ShardJournalPathsAreDistinct)
{
    EXPECT_EQ(shardJournalPath("d", 0), "d/shard-0000.jsonl");
    EXPECT_EQ(shardJournalPath("d", 3), "d/shard-0003.jsonl");
    EXPECT_EQ(shardJournalPath("d", 3, 1), "d/shard-0003h1.jsonl");
    EXPECT_NE(shardJournalPath("d", 1), shardJournalPath("d", 1, 1));
}

// ---------------------------------------------------------------------
// Shard worker run loop (in-process)
// ---------------------------------------------------------------------

TEST(ShardRun, CompletesAndJournalsEveryAssignedJob)
{
    const std::string dir = freshDir("shardrun");
    makeCampaignDirs(dir);
    const std::string journal = shardJournalPath(dir, 0);

    std::vector<SimJob> jobs;
    for (unsigned i = 1; i <= 3; ++i) {
        SimJob job;
        job.workload = smallWorkload(i);
        job.machine = serverConfig();
        job.opts.maxInstructions = kInsns;
        jobs.push_back(std::move(job));
    }

    SimJobRunner runner(1);
    std::size_t done_calls = 0;
    ShardRunOptions opts;
    opts.onJobDone = [&](std::uint64_t, const JobOutcome &, bool) {
        ++done_calls;
    };
    const ShardRunResult res =
        runCampaignShard(runner, jobs, journal, opts);
    EXPECT_TRUE(res.complete);
    EXPECT_FALSE(res.interrupted);
    EXPECT_EQ(res.assigned, 3u);
    EXPECT_EQ(res.executed, 3u);
    EXPECT_EQ(res.replayed, 0u);
    EXPECT_EQ(done_calls, 3u);
    EXPECT_EQ(loadJournal(journal).records.size(), 3u);

    // A second run replays everything from the journal.
    const ShardRunResult again =
        runCampaignShard(runner, jobs, journal, opts);
    EXPECT_TRUE(again.complete);
    EXPECT_EQ(again.replayed, 3u);
    EXPECT_EQ(again.executed, 0u);
}

TEST(ShardRun, PreJournalFiresBeforeRecordIsDurable)
{
    // The crash-injection hook must observe the pre-durability
    // window: at callback time the job's record is NOT yet in the
    // journal, so a crash there forces a rerun.
    const std::string dir = freshDir("prejournal");
    makeCampaignDirs(dir);
    const std::string journal = shardJournalPath(dir, 0);

    SimJob job;
    job.workload = smallWorkload(1);
    job.machine = serverConfig();
    job.opts.maxInstructions = kInsns;

    SimJobRunner runner(1);
    std::size_t records_at_hook = 99;
    ShardRunOptions opts;
    opts.preJournal = [&](std::uint64_t, const JobOutcome &) {
        records_at_hook =
            loadJournalIfPresent(journal).records.size();
    };
    runCampaignShard(runner, {job}, journal, opts);
    EXPECT_EQ(records_at_hook, 0u);
    EXPECT_EQ(loadJournal(journal).records.size(), 1u);
}

// ---------------------------------------------------------------------
// End-to-end supervision through the CLI
// ---------------------------------------------------------------------

TEST(ShardedCampaign, ReportByteIdenticalToSingleProcess)
{
    const std::string specs = freshDir("e2e-specs");
    const auto files = writeSpecs(specs, 3);

    const std::string ref_dir = freshDir("e2e-ref");
    ASSERT_TRUE(runCli(campaignArgs(ref_dir, files)).exitedOk());

    std::vector<std::string> args = campaignArgs(
        freshDir("e2e-sharded"), files);
    const std::string shard_dir = args[1];
    args.push_back("--shards");
    args.push_back("3");
    ASSERT_TRUE(runCli(args).exitedOk());

    const std::string ref = readFile(ref_dir + "/report.json");
    EXPECT_FALSE(ref.empty());
    EXPECT_EQ(readFile(shard_dir + "/report.json"), ref);
}

class CrashContainment
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(CrashContainment, WorkerDeathMidRunIsRecoveredByteIdentical)
{
    const std::string mode = GetParam();
    const std::string specs = freshDir("crash-specs-" + mode);
    const auto files = writeSpecs(specs, 3);

    const std::string ref_dir = freshDir("crash-ref-" + mode);
    ASSERT_TRUE(runCli(campaignArgs(ref_dir, files)).exitedOk());

    // Crash a worker at the worst point of one mid-matrix job:
    // after its work, before the record is durable.
    const std::vector<SimJob> matrix = cliMatrix(files);
    const std::uint64_t crash_key = campaignJobKey(matrix[2]);

    std::vector<std::string> args = campaignArgs(
        freshDir("crash-run-" + mode), files);
    const std::string dir = args[1];
    args.insert(args.end(), {"--shards", "2"});
    std::string out;
    const ExitStatus st = runCli(
        args,
        {csprintf("POWERCHOP_TEST_CRASH_KEY=%016llx",
                  static_cast<unsigned long long>(crash_key)),
         "POWERCHOP_TEST_CRASH_MODE=" + mode},
        &out);
    EXPECT_TRUE(st.exitedOk()) << st.describe() << "\n" << out;

    // The injection actually fired (the crash-once marker exists)...
    EXPECT_TRUE(std::filesystem::exists(
        csprintf("%s/.crash-fired-%016llx", dir.c_str(),
                 static_cast<unsigned long long>(crash_key))));
    // ...and the merged report is still byte-identical.
    EXPECT_EQ(readFile(dir + "/report.json"),
              readFile(ref_dir + "/report.json"));
    // The supervision tallies surface in the campaign summary.
    EXPECT_NE(out.find("worker crashes"), std::string::npos) << out;
}

INSTANTIATE_TEST_SUITE_P(Signals, CrashContainment,
                         ::testing::Values("segv", "kill"));

TEST(ShardedCampaign, KilledWorkerSurfacesInStatusAndFlightLog)
{
    // A SIGKILLed worker cannot dump anything itself; the supervisor
    // must (a) force a statusboard snapshot recording the restart —
    // so `powerchop status` reflects it within one cadence interval
    // rather than at the next timer tick — and (b) dump its own
    // flight ring with the worker-crash event.
    const std::string specs = freshDir("obs-specs");
    const auto files = writeSpecs(specs, 3);
    const std::vector<SimJob> matrix = cliMatrix(files);
    const std::uint64_t crash_key = campaignJobKey(matrix[2]);

    std::vector<std::string> args =
        campaignArgs(freshDir("obs-run"), files);
    const std::string dir = args[1];
    args.insert(args.end(), {"--shards", "2"});
    const ExitStatus st = runCli(
        args,
        {csprintf("POWERCHOP_TEST_CRASH_KEY=%016llx",
                  static_cast<unsigned long long>(crash_key)),
         "POWERCHOP_TEST_CRASH_MODE=kill"});
    ASSERT_TRUE(st.exitedOk()) << st.describe();

    // The statusboard (default-on) recorded the restart.
    StatusSnapshot snap;
    ASSERT_TRUE(StatusSnapshot::fromJson(
        readFile(campaignStatusPath(dir)), snap));
    EXPECT_EQ(snap.role, "supervisor");
    EXPECT_TRUE(snap.finished);
    EXPECT_GE(snap.restarts, 1u);
    EXPECT_EQ(snap.jobsDone, matrix.size());
    EXPECT_GE(snap.restartBackoffMs.samples, 1u);
    bool shard_restarted = false;
    for (const auto &sh : snap.shards)
        shard_restarted |= sh.restarts >= 1;
    EXPECT_TRUE(shard_restarted);

    // The supervisor's flight log exists, every line parses, and the
    // crash and restart moments are in it.
    const std::string flight = readFile(dir + "/flight.jsonl");
    ASSERT_FALSE(flight.empty());
    std::set<std::string> types;
    std::istringstream lines(flight);
    std::string line;
    while (std::getline(lines, line)) {
        json::Value v;
        ASSERT_TRUE(json::parse(line, v)) << line;
        types.insert(v.getString("type"));
    }
    EXPECT_TRUE(types.count("worker-crash")) << flight;
    EXPECT_TRUE(types.count("restart")) << flight;
    EXPECT_TRUE(types.count("worker-spawn")) << flight;
}

TEST(ShardedCampaign, ObservabilityOptOutLeavesNoSideFiles)
{
    const std::string specs = freshDir("optout-specs");
    const auto files = writeSpecs(specs, 2);
    std::vector<std::string> args =
        campaignArgs(freshDir("optout-run"), files);
    const std::string dir = args[1];
    args.insert(args.end(), {"--shards", "2"});
    ASSERT_TRUE(runCli(args, {"POWERCHOP_NO_STATUS=1",
                              "POWERCHOP_NO_FLIGHT=1"})
                    .exitedOk());
    EXPECT_FALSE(std::filesystem::exists(statusDirPath(dir)));
    EXPECT_FALSE(std::filesystem::exists(dir + "/flight.jsonl"));
}

TEST(ShardedCampaign, ResumeCompletesPartialShardJournals)
{
    // Simulate a supervisor killed mid-campaign: only part of one
    // shard's journal exists; --resume must finish the rest and
    // still merge byte-identically.
    const std::string specs = freshDir("resume-specs");
    const auto files = writeSpecs(specs, 3);

    const std::string ref_dir = freshDir("resume-ref");
    ASSERT_TRUE(runCli(campaignArgs(ref_dir, files)).exitedOk());

    const std::string dir = freshDir("resume-run");
    makeCampaignDirs(dir);
    {
        // Pre-complete two jobs of shard 0's key range by running
        // them through the worker loop directly.
        const std::vector<SimJob> matrix = cliMatrix(files);
        std::vector<std::uint64_t> keys;
        for (const auto &job : matrix)
            keys.push_back(campaignJobKey(job));
        const auto parts = partitionByKeyRange(keys, 2);
        ASSERT_GE(parts[0].size(), 2u);
        std::vector<SimJob> head = {matrix[parts[0][0]],
                                    matrix[parts[0][1]]};
        SimJobRunner runner(1);
        const ShardRunResult res = runCampaignShard(
            runner, head, shardJournalPath(dir, 0), {});
        ASSERT_TRUE(res.complete);
    }

    std::vector<std::string> args = campaignArgs(dir, files);
    args.insert(args.end(), {"--shards", "2", "--resume"});
    std::string out;
    ASSERT_TRUE(runCli(args, {}, &out).exitedOk()) << out;
    EXPECT_NE(out.find("2 replayed"), std::string::npos) << out;
    EXPECT_EQ(readFile(dir + "/report.json"),
              readFile(ref_dir + "/report.json"));
}

TEST(ShardedCampaign, DirtyDirectoryRefusedAcrossLayouts)
{
    const std::string specs = freshDir("dirty-specs");
    const auto files = writeSpecs(specs, 1);

    // A completed sharded campaign cannot be rerun without --resume.
    std::vector<std::string> args =
        campaignArgs(freshDir("dirty-sharded"), files);
    const std::string dir = args[1];
    args.insert(args.end(), {"--shards", "2"});
    ASSERT_TRUE(runCli(args).exitedOk());
    const ExitStatus again = runCli(args);
    EXPECT_EQ(again.kind, ExitStatus::Kind::Exited);
    EXPECT_NE(again.exitCode, 0);

    // A single-process campaign directory cannot be continued with
    // --shards: the two journal layouts must never mix.
    const std::string sp_dir = freshDir("dirty-single");
    ASSERT_TRUE(runCli(campaignArgs(sp_dir, files)).exitedOk());
    std::vector<std::string> mixed = campaignArgs(sp_dir, files);
    mixed.insert(mixed.end(), {"--shards", "2", "--resume"});
    const ExitStatus st = runCli(mixed);
    EXPECT_EQ(st.kind, ExitStatus::Kind::Exited);
    EXPECT_NE(st.exitCode, 0);
}

TEST(ShardedCampaign, WorkerRebuildsMatrixFromForwardedFlags)
{
    // The worker derives content keys from the forwarded matrix
    // flags; a worker handed a key its matrix cannot produce must
    // die loudly instead of stalling the campaign. Exercised by
    // running campaign-worker directly with a bogus key.
    const std::string specs = freshDir("worker-specs");
    const auto files = writeSpecs(specs, 1);
    const std::string dir = freshDir("worker-dir");
    makeCampaignDirs(dir);

    SpawnOptions opts;
    opts.argv = {POWERCHOP_CLI_PATH, "campaign-worker", dir,
                 "--workloads", csv(files),
                 "--machine", "server",
                 "--modes", "full-power,powerchop",
                 "--insns", std::to_string(kInsns),
                 "--journal", shardJournalPath(dir, 0)};
    Subprocess p;
    p.spawn(opts);
    p.writeStdin("00000000deadbeef\n");
    p.closeStdin();
    const ExitStatus st = p.wait(60.0);
    EXPECT_EQ(st.kind, ExitStatus::Kind::Exited);
    EXPECT_NE(st.exitCode, 0);

    // With real keys the same invocation completes and journals.
    const std::vector<SimJob> matrix = cliMatrix(files);
    Subprocess ok;
    ok.spawn(opts);
    std::string feed;
    for (const auto &job : matrix) {
        feed += csprintf("%016llx\n",
                         static_cast<unsigned long long>(
                             campaignJobKey(job)));
    }
    ok.writeStdin(feed);
    ok.closeStdin();
    std::string out;
    EXPECT_TRUE(ok.wait(300.0, &out).exitedOk()) << out;
    EXPECT_NE(out.find(csprintf("ready %zu", matrix.size())),
              std::string::npos);
    EXPECT_EQ(loadJournal(shardJournalPath(dir, 0)).records.size(),
              matrix.size());
}

} // namespace
