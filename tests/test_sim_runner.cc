/**
 * @file
 * Tests for the parallel simulation job runner: determinism across
 * worker counts (bit-identical results), stress with more jobs than
 * workers, edge cases, batch comparison helpers, exception
 * propagation, and the environment-override parsers.
 */

#include <cstdlib>
#include <gtest/gtest.h>

#include "common/logging.hh"
#include "sim/experiment.hh"
#include "sim/sim_runner.hh"
#include "workload/suites.hh"

using namespace powerchop;

namespace
{

WorkloadSpec
smallWorkload(unsigned seed = 5)
{
    WorkloadSpec w;
    w.name = "small-" + std::to_string(seed);
    w.seed = seed;
    PhaseSpec compute;
    compute.name = "compute";
    compute.simdFrac = 0.05;
    PhaseSpec memory;
    memory.name = "memory";
    memory.memFrac = 0.32;
    memory.mem.workingSetBytes = 256 * 1024;
    memory.mem.hotRegionFrac = 0.8;
    memory.mem.randomFrac = 0.5;
    w.phases = {compute, memory};
    w.schedule = {{0, 60'000}, {1, 90'000}};
    return w;
}

/** A mixed job set covering modes, machines and seeds. */
std::vector<SimJob>
mixedJobs(InsnCount insns = 120'000)
{
    const SimMode modes[] = {SimMode::FullPower, SimMode::PowerChop,
                             SimMode::MinPower, SimMode::TimeoutVpu,
                             SimMode::DrowsyMlc};
    std::vector<SimJob> jobs;
    for (unsigned seed = 1; seed <= 2; ++seed) {
        for (SimMode mode : modes) {
            SimJob job;
            job.machine =
                seed % 2 ? serverConfig() : mobileConfig();
            job.workload = smallWorkload(seed);
            job.opts.mode = mode;
            job.opts.maxInstructions = insns;
            jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

/** Full-fidelity equality via the JSON rendering plus the raw cycle
 *  count; both must match bit-for-bit. */
void
expectIdentical(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.toJson(), b.toJson());
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.energy.totalEnergy(), b.energy.totalEnergy());
}

/** RAII environment-variable override. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        if (old) {
            had_ = true;
            old_ = old;
        }
        if (value)
            setenv(name, value, 1);
        else
            unsetenv(name);
    }
    ~ScopedEnv()
    {
        if (had_)
            setenv(name_, old_.c_str(), 1);
        else
            unsetenv(name_);
    }

  private:
    const char *name_;
    bool had_ = false;
    std::string old_;
};

} // namespace

// --- determinism -------------------------------------------------------------

TEST(SimJobRunner, ParallelBitIdenticalToSerial)
{
    const std::vector<SimJob> jobs = mixedJobs();

    // Ground truth: direct serial simulate() calls.
    std::vector<SimResult> serial;
    for (const auto &job : jobs)
        serial.push_back(
            simulate(job.machine, job.workload, job.opts));

    SimJobRunner one(1);
    SimJobRunner four(4);
    std::vector<SimResult> r1 = one.run(jobs);
    std::vector<SimResult> r4 = four.run(jobs);

    ASSERT_EQ(r1.size(), jobs.size());
    ASSERT_EQ(r4.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        expectIdentical(serial[i], r1[i]);
        expectIdentical(serial[i], r4[i]);
    }
}

TEST(SimJobRunner, RepeatedRunsAreDeterministic)
{
    const std::vector<SimJob> jobs = mixedJobs(80'000);
    SimJobRunner runner(4);
    std::vector<SimResult> a = runner.run(jobs);
    std::vector<SimResult> b = runner.run(jobs);
    for (std::size_t i = 0; i < jobs.size(); ++i)
        expectIdentical(a[i], b[i]);
}

// --- load shapes -------------------------------------------------------------

TEST(SimJobRunner, StressMoreJobsThanWorkers)
{
    std::vector<SimJob> jobs;
    for (unsigned i = 0; i < 24; ++i) {
        SimJob job;
        job.machine = serverConfig();
        job.workload = smallWorkload(i + 1);
        job.opts.mode =
            i % 2 ? SimMode::PowerChop : SimMode::FullPower;
        job.opts.maxInstructions = 40'000;
        jobs.push_back(std::move(job));
    }

    SimJobRunner runner(3);
    std::vector<SimResult> results = runner.run(jobs);
    ASSERT_EQ(results.size(), jobs.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        // Submission order is preserved: result i belongs to job i.
        EXPECT_EQ(results[i].workload, jobs[i].workload.name);
        EXPECT_EQ(results[i].mode, jobs[i].opts.mode);
        EXPECT_EQ(results[i].instructions, 40'000u);
        EXPECT_GT(results[i].cycles, 0.0);
    }
    EXPECT_EQ(runner.report().jobs, jobs.size());
    EXPECT_GE(runner.report().instructions, 24u * 40'000u);
}

TEST(SimJobRunner, ZeroJobs)
{
    SimJobRunner runner(2);
    EXPECT_TRUE(runner.run({}).empty());
    EXPECT_EQ(runner.report().jobs, 0u);
}

TEST(SimJobRunner, SingleJob)
{
    SimJob job;
    job.machine = serverConfig();
    job.workload = smallWorkload();
    job.opts.mode = SimMode::PowerChop;
    job.opts.maxInstructions = 100'000;

    SimJobRunner runner(4);
    std::vector<SimResult> results = runner.run({job});
    ASSERT_EQ(results.size(), 1u);
    expectIdentical(results[0],
                    simulate(job.machine, job.workload, job.opts));
}

TEST(SimJobRunner, GenericTasksRunExactlyOnce)
{
    SimJobRunner runner(4);
    std::vector<int> counts(57, 0);
    runner.runTasks(counts.size(),
                    [&](std::size_t i) { ++counts[i]; });
    for (int c : counts)
        EXPECT_EQ(c, 1);
}

TEST(SimJobRunner, JobExceptionsPropagate)
{
    SimJob bad;
    bad.machine = serverConfig();
    bad.workload = smallWorkload();
    bad.opts.maxInstructions = 0;  // simulate() rejects this

    SimJob good = bad;
    good.opts.maxInstructions = 30'000;

    SimJobRunner runner(2);
    EXPECT_THROW(runner.run({good, bad, good}), FatalError);
    // The runner survives a failed batch.
    EXPECT_EQ(runner.run({good}).size(), 1u);
}

// --- batch comparison helpers ------------------------------------------------

TEST(ExperimentBatch, PairBatchMatchesSerialPair)
{
    std::vector<ComparisonPoint> points = {
        {serverConfig(), smallWorkload(1)},
        {mobileConfig(), smallWorkload(2)},
    };

    SimJobRunner runner(4);
    std::vector<ComparisonRuns> batch =
        runPairBatch(points, 60'000, runner);
    ASSERT_EQ(batch.size(), points.size());

    for (std::size_t i = 0; i < points.size(); ++i) {
        ComparisonRuns serial =
            runPair(points[i].machine, points[i].workload, 60'000);
        expectIdentical(serial.fullPower, batch[i].fullPower);
        expectIdentical(serial.powerChop, batch[i].powerChop);
    }
}

TEST(ExperimentBatch, ComparisonBatchIncludesMinPower)
{
    std::vector<ComparisonPoint> points = {
        {serverConfig(), smallWorkload(3)}};

    SimJobRunner runner(3);
    std::vector<ComparisonRuns> batch =
        runComparisonBatch(points, 60'000, runner);
    ASSERT_EQ(batch.size(), 1u);

    ComparisonRuns serial =
        runComparison(points[0].machine, points[0].workload, 60'000);
    expectIdentical(serial.fullPower, batch[0].fullPower);
    expectIdentical(serial.powerChop, batch[0].powerChop);
    expectIdentical(serial.minPower, batch[0].minPower);
}

// --- throughput report -------------------------------------------------------

TEST(RunnerReport, AccumulatesAcrossBatches)
{
    SimJob job;
    job.machine = serverConfig();
    job.workload = smallWorkload();
    job.opts.maxInstructions = 50'000;

    SimJobRunner runner(2);
    runner.run({job, job});
    runner.run({job});

    const RunnerReport &rep = runner.report();
    EXPECT_EQ(rep.jobs, 3u);
    EXPECT_EQ(rep.threads, 2u);
    EXPECT_GE(rep.instructions, 150'000u);
    EXPECT_GT(rep.wallSeconds, 0.0);
    EXPECT_GT(rep.busySeconds, 0.0);
    EXPECT_GT(rep.mips(), 0.0);
    EXPECT_GT(rep.jobsPerSecond(), 0.0);

    std::string json = rep.toJson("unit-test");
    EXPECT_NE(json.find("\"bench\":\"unit-test\""), std::string::npos);
    EXPECT_NE(json.find("\"jobs\":3"), std::string::npos);
    EXPECT_NE(json.find("\"threads\":2"), std::string::npos);
}

// --- environment overrides ---------------------------------------------------

TEST(InsnBudget, AcceptsPlainNumbers)
{
    ScopedEnv env("POWERCHOP_INSNS", "123456");
    EXPECT_EQ(insnBudget(42), 123456u);
}

TEST(InsnBudget, DefaultsWhenUnset)
{
    ScopedEnv env("POWERCHOP_INSNS", nullptr);
    EXPECT_EQ(insnBudget(42), 42u);
}

TEST(InsnBudget, RejectsTrailingJunk)
{
    setQuiet(true);
    ScopedEnv env("POWERCHOP_INSNS", "10M");
    EXPECT_EQ(insnBudget(42), 42u);
    setQuiet(false);
}

TEST(InsnBudget, RejectsOverflow)
{
    setQuiet(true);
    // Saturates strtoull (sets ERANGE); previously accepted as
    // ULLONG_MAX.
    ScopedEnv env("POWERCHOP_INSNS", "99999999999999999999999999");
    EXPECT_EQ(insnBudget(42), 42u);
    setQuiet(false);
}

TEST(InsnBudget, RejectsZeroAndGarbage)
{
    setQuiet(true);
    {
        ScopedEnv env("POWERCHOP_INSNS", "0");
        EXPECT_EQ(insnBudget(42), 42u);
    }
    {
        ScopedEnv env("POWERCHOP_INSNS", "banana");
        EXPECT_EQ(insnBudget(42), 42u);
    }
    {
        ScopedEnv env("POWERCHOP_INSNS", "-5");
        EXPECT_EQ(insnBudget(42), 42u);
    }
    setQuiet(false);
}

TEST(DefaultJobCount, HonorsEnvironment)
{
    {
        ScopedEnv env("POWERCHOP_JOBS", "3");
        EXPECT_EQ(defaultJobCount(), 3u);
    }
    setQuiet(true);
    {
        // Invalid values fall back to the hardware concurrency.
        ScopedEnv env("POWERCHOP_JOBS", "zero");
        EXPECT_GE(defaultJobCount(), 1u);
    }
    {
        ScopedEnv env("POWERCHOP_JOBS", "0");
        EXPECT_GE(defaultJobCount(), 1u);
    }
    setQuiet(false);

    ScopedEnv env("POWERCHOP_JOBS", "2");
    SimJobRunner runner;
    EXPECT_EQ(runner.threads(), 2u);
}
