/**
 * @file
 * Unit tests for the simulator layer: machine configs, results and
 * short end-to-end runs.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "sim/experiment.hh"
#include "sim/machine_config.hh"
#include "sim/simulator.hh"
#include "workload/suites.hh"

using namespace powerchop;

namespace
{

WorkloadSpec
smallWorkload()
{
    WorkloadSpec w;
    w.name = "small";
    w.seed = 5;
    PhaseSpec compute;
    compute.name = "compute";
    compute.simdFrac = 0.05;
    PhaseSpec memory;
    memory.name = "memory";
    memory.memFrac = 0.32;
    memory.mem.workingSetBytes = 256 * 1024;
    memory.mem.hotRegionFrac = 0.8;
    memory.mem.randomFrac = 0.5;
    w.phases = {compute, memory};
    w.schedule = {{0, 150'000}, {1, 250'000}};
    return w;
}

SimResult
run(SimMode mode, InsnCount insns = 400'000)
{
    SimOptions opts;
    opts.mode = mode;
    opts.maxInstructions = insns;
    return simulate(serverConfig(), smallWorkload(), opts);
}

} // namespace

// --- machine configs ---------------------------------------------------------------

TEST(MachineConfig, TableOneGeometries)
{
    MachineConfig s = serverConfig();
    EXPECT_EQ(s.mlc.sizeBytes, 1024u * 1024);
    EXPECT_EQ(s.mlc.assoc, 8u);
    EXPECT_EQ(s.vpu.width, 4u);
    EXPECT_EQ(s.bpu.largeBtbEntries, 4096u);
    EXPECT_EQ(s.bpu.smallBtbEntries, 1024u);
    EXPECT_NO_THROW(s.validate());

    MachineConfig m = mobileConfig();
    EXPECT_EQ(m.mlc.sizeBytes, 2048u * 1024);
    EXPECT_EQ(m.vpu.width, 2u);
    EXPECT_EQ(m.bpu.largeBtbEntries, 2048u);
    EXPECT_EQ(m.bpu.smallBtbEntries, 512u);
    EXPECT_NO_THROW(m.validate());
}

TEST(MachineConfig, ValidationCatchesBadGeometry)
{
    MachineConfig s = serverConfig();
    s.mlc.assoc = 1;
    s.mlc.sizeBytes = 128 * 1024;
    EXPECT_THROW(s.validate(), FatalError);
}

TEST(MachineConfig, GatingPenaltiesMatchPaper)
{
    MachineConfig s = serverConfig();
    EXPECT_DOUBLE_EQ(s.penalties.mlcSwitchCycles, 50.0);
    EXPECT_DOUBLE_EQ(s.penalties.vpuSwitchCycles, 30.0);
    EXPECT_DOUBLE_EQ(s.penalties.bpuSwitchCycles, 20.0);
    EXPECT_DOUBLE_EQ(s.penalties.vpuSaveRestoreCycles, 500.0);
    EXPECT_DOUBLE_EQ(s.timeout.timeoutCycles, 20000.0);
}

// --- results arithmetic ---------------------------------------------------------------

TEST(SimResult, ModeNames)
{
    EXPECT_STREQ(simModeName(SimMode::PowerChop), "powerchop");
    EXPECT_STREQ(simModeName(SimMode::TimeoutVpu), "timeout-vpu");
}

TEST(SimResult, ComparisonArithmetic)
{
    SimResult base;
    base.instructions = 1000;
    base.cycles = 1000;
    base.energy.seconds = 1.0;
    base.energy.unit(Unit::Rest).leakage = 2.0;
    base.energy.unit(Unit::Rest).dynamic = 2.0;

    SimResult other = base;
    other.cycles = 1100;
    other.energy.unit(Unit::Rest).dynamic = 1.0;

    EXPECT_NEAR(other.slowdownVs(base), 0.10, 1e-12);
    EXPECT_NEAR(other.energyReductionVs(base), 0.25, 1e-12);
    EXPECT_NEAR(other.powerReductionVs(base), 0.25, 1e-12);
    EXPECT_NEAR(other.leakageReductionVs(base), 0.0, 1e-12);
}

// --- simulation runs --------------------------------------------------------------------

TEST(Simulator, Deterministic)
{
    SimResult a = run(SimMode::PowerChop);
    SimResult b = run(SimMode::PowerChop);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.pvtLookups, b.pvtLookups);
    EXPECT_EQ(a.energy.totalEnergy(), b.energy.totalEnergy());
}

TEST(Simulator, BasicInvariants)
{
    for (SimMode mode : {SimMode::FullPower, SimMode::PowerChop,
                         SimMode::MinPower, SimMode::TimeoutVpu}) {
        SimResult r = run(mode);
        EXPECT_EQ(r.instructions, 400'000u);
        // Cycles at least issue-limited.
        EXPECT_GE(r.cycles, r.instructions / 4.0);
        EXPECT_GT(r.ipc(), 0.0);
        EXPECT_LE(r.ipc(), 4.0);
        EXPECT_GE(r.vpuGatedFraction, 0.0);
        EXPECT_LE(r.vpuGatedFraction, 1.0);
        EXPECT_LE(r.mlcHalfFraction + r.mlcOneWayFraction, 1.0 + 1e-9);
        EXPECT_GT(r.energy.totalEnergy(), 0.0);
        EXPECT_GT(r.seconds, 0.0);
    }
}

TEST(Simulator, FullPowerNeverGates)
{
    SimResult r = run(SimMode::FullPower);
    EXPECT_DOUBLE_EQ(r.vpuGatedFraction, 0.0);
    EXPECT_DOUBLE_EQ(r.bpuGatedFraction, 0.0);
    EXPECT_DOUBLE_EQ(r.mlcOneWayFraction, 0.0);
    EXPECT_EQ(r.gating.vpuSwitches, 0u);
}

TEST(Simulator, MinPowerGatesEverythingAlways)
{
    SimResult r = run(SimMode::MinPower);
    EXPECT_GT(r.vpuGatedFraction, 0.999);
    EXPECT_GT(r.bpuGatedFraction, 0.999);
    EXPECT_GT(r.mlcOneWayFraction, 0.999);
    EXPECT_GT(r.simdEmulated, 0u);
}

TEST(Simulator, MinPowerUsesLessLeakagePowerAndMoreTime)
{
    SimResult full = run(SimMode::FullPower);
    SimResult min = run(SimMode::MinPower);
    EXPECT_LT(min.energy.averageLeakagePower(),
              full.energy.averageLeakagePower());
    EXPECT_GE(min.cycles, full.cycles * 0.99);
}

TEST(Simulator, PowerChopBetweenExtremes)
{
    SimResult full = run(SimMode::FullPower);
    SimResult pc = run(SimMode::PowerChop);
    // PowerChop saves leakage power relative to full power...
    EXPECT_LT(pc.energy.averageLeakagePower(),
              full.energy.averageLeakagePower());
    // ...at a small slowdown.
    EXPECT_LT(pc.slowdownVs(full), 0.10);
}

TEST(Simulator, PowerChopMaintainsPvtHitRate)
{
    SimResult pc = run(SimMode::PowerChop, 1'000'000);
    EXPECT_GT(pc.pvtLookups, 50u);
    EXPECT_LT(pc.pvtMissPerTranslation, 0.01);
    EXPECT_GT(pc.translationsExecuted, 10'000u);
}

TEST(Simulator, ManagedUnitMasksRestrictGating)
{
    SimOptions opts;
    opts.mode = SimMode::PowerChop;
    opts.maxInstructions = 400'000;
    opts.manageVpu = true;
    opts.manageBpu = false;
    opts.manageMlc = false;
    SimResult r = simulate(serverConfig(), smallWorkload(), opts);
    EXPECT_GT(r.vpuGatedFraction, 0.0);
    EXPECT_DOUBLE_EQ(r.bpuGatedFraction, 0.0);
    EXPECT_DOUBLE_EQ(r.mlcOneWayFraction, 0.0);
    EXPECT_DOUBLE_EQ(r.mlcHalfFraction, 0.0);
}

TEST(Simulator, TimeoutGatesVpuOnly)
{
    SimResult r = run(SimMode::TimeoutVpu, 600'000);
    // The compute phase uses SIMD every ~20 insns, so the VPU stays
    // on there; the memory phase has none, so the timeout fires.
    EXPECT_GT(r.vpuGatedFraction, 0.1);
    EXPECT_DOUBLE_EQ(r.bpuGatedFraction, 0.0);
    EXPECT_DOUBLE_EQ(r.mlcOneWayFraction, 0.0);
}

TEST(Simulator, SamplerFires)
{
    SimOptions opts;
    opts.mode = SimMode::FullPower;
    opts.maxInstructions = 100'000;
    opts.sampleInterval = 10'000;
    int samples = 0;
    Cycles last = 0;
    opts.sampler = [&](InsnCount n, Cycles c) {
        ++samples;
        EXPECT_GT(c, last);
        last = c;
        EXPECT_EQ(n % 10'000, 0u);
    };
    simulate(serverConfig(), smallWorkload(), opts);
    EXPECT_EQ(samples, 10);
}

TEST(Simulator, WindowObserverFires)
{
    SimOptions opts;
    opts.mode = SimMode::PowerChop;
    opts.maxInstructions = 500'000;
    int windows = 0;
    opts.windowObserver = [&](const WindowReport &rep) {
        ++windows;
        EXPECT_GT(rep.translations, 0u);
        EXPECT_FALSE(rep.signature.empty());
    };
    simulate(serverConfig(), smallWorkload(), opts);
    EXPECT_GT(windows, 10);
}

TEST(Simulator, RejectsZeroBudget)
{
    SimOptions opts;
    opts.maxInstructions = 0;
    EXPECT_THROW(simulate(serverConfig(), smallWorkload(), opts),
                 FatalError);
}

TEST(SimResult, JsonIsWellFormedAndComplete)
{
    SimResult r = run(SimMode::PowerChop, 200'000);
    std::string j = r.toJson();
    // Structural sanity without a JSON library: balanced braces,
    // quoted keys, and the load-bearing fields present.
    EXPECT_EQ(j.front(), '{');
    EXPECT_EQ(j.back(), '}');
    for (const char *key :
         {"\"workload\"", "\"mode\"", "\"ipc\"", "\"avg_power_w\"",
          "\"vpu_gated\"", "\"pvt_lookups\"", "\"cycles\""}) {
        EXPECT_NE(j.find(key), std::string::npos) << key;
    }
    EXPECT_NE(j.find("\"mode\":\"powerchop\""), std::string::npos);
    // No trailing comma before the closing brace.
    EXPECT_EQ(j.find(",}"), std::string::npos);
}

// --- experiment helpers --------------------------------------------------------------------

TEST(Experiment, MeanAndMax)
{
    EXPECT_DOUBLE_EQ(mean({1, 2, 3}), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(maxOf({1, 5, 3}), 5.0);
    EXPECT_DOUBLE_EQ(maxOf({}), 0.0);
}

TEST(Experiment, PctFormats)
{
    EXPECT_EQ(pct(0.123456), " 12.35%");
}

TEST(Experiment, InsnBudgetDefault)
{
    unsetenv("POWERCHOP_INSNS");
    EXPECT_EQ(insnBudget(123), 123u);
    setenv("POWERCHOP_INSNS", "5000", 1);
    EXPECT_EQ(insnBudget(123), 5000u);
    setenv("POWERCHOP_INSNS", "garbage", 1);
    setQuiet(true);
    EXPECT_EQ(insnBudget(123), 123u);
    setQuiet(false);
    unsetenv("POWERCHOP_INSNS");
}

TEST(Experiment, RunPairProducesComparableRuns)
{
    ComparisonRuns runs =
        runPair(serverConfig(), smallWorkload(), 200'000);
    EXPECT_EQ(runs.fullPower.instructions, runs.powerChop.instructions);
    EXPECT_EQ(runs.fullPower.mode, SimMode::FullPower);
    EXPECT_EQ(runs.powerChop.mode, SimMode::PowerChop);
}
