/**
 * @file
 * Unit tests for workload spec text serialization (spec_io).
 */

#include <cstdio>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "workload/generator.hh"
#include "workload/spec_io.hh"
#include "workload/suites.hh"

using namespace powerchop;

namespace
{

const char *sampleSpec = R"(
# a test workload
name = mykernel
suite = SPEC-FP
seed = 77

[phase compute]
simd_frac = 0.05
mem_frac = 0.30
working_set_kb = 256
streaming = false
random_frac = 0.4

[phase stream]
mem_frac = 0.34
working_set_kb = 65536
streaming = true

[schedule]
compute 500000
stream  300000
compute 200000
)";

} // namespace

TEST(SpecIo, ParsesSample)
{
    WorkloadSpec w = parseWorkloadSpec(sampleSpec, "sample");
    EXPECT_EQ(w.name, "mykernel");
    EXPECT_EQ(w.suite, Suite::SpecFp);
    EXPECT_EQ(w.seed, 77u);
    ASSERT_EQ(w.phases.size(), 2u);
    EXPECT_EQ(w.phases[0].name, "compute");
    EXPECT_DOUBLE_EQ(w.phases[0].simdFrac, 0.05);
    EXPECT_EQ(w.phases[0].mem.workingSetBytes, 256u * 1024);
    EXPECT_FALSE(w.phases[0].mem.streaming);
    EXPECT_TRUE(w.phases[1].mem.streaming);
    ASSERT_EQ(w.schedule.size(), 3u);
    EXPECT_EQ(w.schedule[0].phase, 0u);
    EXPECT_EQ(w.schedule[1].phase, 1u);
    EXPECT_EQ(w.schedule[1].insns, 300'000u);
}

TEST(SpecIo, OmittedKeysKeepDefaults)
{
    WorkloadSpec w = parseWorkloadSpec(sampleSpec, "sample");
    PhaseSpec defaults;
    EXPECT_DOUBLE_EQ(w.phases[0].branchFrac, defaults.branchFrac);
    EXPECT_EQ(w.phases[0].hotBlocks, defaults.hotBlocks);
}

TEST(SpecIo, RoundTripsAllSuiteModels)
{
    for (const auto &w : allWorkloads()) {
        std::string text = formatWorkloadSpec(w);
        WorkloadSpec back = parseWorkloadSpec(text, w.name);
        EXPECT_EQ(back.name, w.name);
        EXPECT_EQ(back.suite, w.suite);
        EXPECT_EQ(back.seed, w.seed);
        ASSERT_EQ(back.phases.size(), w.phases.size()) << w.name;
        for (std::size_t i = 0; i < w.phases.size(); ++i) {
            EXPECT_DOUBLE_EQ(back.phases[i].simdFrac,
                             w.phases[i].simdFrac);
            EXPECT_DOUBLE_EQ(back.phases[i].memFrac,
                             w.phases[i].memFrac);
            EXPECT_EQ(back.phases[i].mem.workingSetBytes,
                      w.phases[i].mem.workingSetBytes);
            EXPECT_EQ(back.phases[i].mem.streaming,
                      w.phases[i].mem.streaming);
            EXPECT_DOUBLE_EQ(back.phases[i].fracCorrelated,
                             w.phases[i].fracCorrelated);
        }
        ASSERT_EQ(back.schedule.size(), w.schedule.size());
        for (std::size_t i = 0; i < w.schedule.size(); ++i) {
            EXPECT_EQ(back.schedule[i].phase, w.schedule[i].phase);
            EXPECT_EQ(back.schedule[i].insns, w.schedule[i].insns);
        }
    }
}

TEST(SpecIo, RejectsUnknownKeys)
{
    EXPECT_THROW(parseWorkloadSpec("name = x\nbogus = 1\n"
                                   "[phase p]\n[schedule]\np 100\n"),
                 FatalError);
    EXPECT_THROW(parseWorkloadSpec("name = x\n[phase p]\ntypo_frac = 1\n"
                                   "[schedule]\np 100\n"),
                 FatalError);
}

TEST(SpecIo, RejectsMalformedLines)
{
    EXPECT_THROW(parseWorkloadSpec("just words\n"), FatalError);
    EXPECT_THROW(parseWorkloadSpec("[phase p\n"), FatalError);
    EXPECT_THROW(parseWorkloadSpec("[mystery]\n"), FatalError);
    EXPECT_THROW(parseWorkloadSpec("[phase ]\n"), FatalError);
    EXPECT_THROW(
        parseWorkloadSpec("[phase p]\nsimd_frac = banana\n"),
        FatalError);
    EXPECT_THROW(
        parseWorkloadSpec("[phase p]\n[schedule]\nnosuch 100\n"),
        FatalError);
    EXPECT_THROW(
        parseWorkloadSpec("[phase p]\n[phase p]\n[schedule]\np 1\n"),
        FatalError);
}

TEST(SpecIo, RejectsSpecFailingValidation)
{
    // Instruction mix above 1 parses but fails WorkloadSpec::validate.
    EXPECT_THROW(parseWorkloadSpec("[phase p]\nsimd_frac = 0.9\n"
                                   "mem_frac = 0.9\n[schedule]\np 10\n"),
                 FatalError);
}

TEST(SpecIo, FileRoundTrip)
{
    WorkloadSpec w = findWorkload("gobmk");
    const char *path = "/tmp/powerchop_spec_io_test.wl";
    saveWorkloadSpec(w, path);
    WorkloadSpec back = loadWorkloadSpec(path);
    EXPECT_EQ(back.name, "gobmk");
    EXPECT_EQ(back.phases.size(), w.phases.size());
    std::remove(path);
}

TEST(SpecIo, MissingFileIsFatal)
{
    EXPECT_THROW(loadWorkloadSpec("/nonexistent/path.wl"), FatalError);
}

TEST(SpecIo, ParsedSpecRunsIdenticallyToOriginal)
{
    // The serialized form must describe the *same* workload: a
    // generator built from the round-tripped spec emits the same
    // stream.
    WorkloadSpec orig = findWorkload("hmmer");
    WorkloadSpec back =
        parseWorkloadSpec(formatWorkloadSpec(orig), "rt");
    WorkloadGenerator g1(orig), g2(back);
    for (int i = 0; i < 5000; ++i) {
        const DynInst &a = g1.next();
        const DynInst &b = g2.next();
        ASSERT_EQ(a.pc(), b.pc());
        ASSERT_EQ(a.effAddr, b.effAddr);
        ASSERT_EQ(a.taken, b.taken);
    }
}
