/**
 * @file
 * Tests for the child-process layer under the shard supervisor:
 * spawn/exec, pipe plumbing, non-blocking reads, waitpid
 * classification (exit code vs. fatal signal), kill/reap hygiene,
 * and the monotonic deadline helper.
 */

#include <cmath>
#include <csignal>
#include <utility>
#include <gtest/gtest.h>

#include "common/clock.hh"
#include "common/subprocess.hh"

using namespace powerchop;

namespace
{

SpawnOptions
shell(const std::string &script)
{
    SpawnOptions opts;
    opts.argv = {"/bin/sh", "-c", script};
    return opts;
}

// ---------------------------------------------------------------------
// MonotonicDeadline
// ---------------------------------------------------------------------

TEST(MonotonicDeadline, UnarmedNeverExpires)
{
    const MonotonicDeadline none;
    EXPECT_FALSE(none.armed());
    EXPECT_FALSE(none.expired());
    EXPECT_TRUE(std::isinf(none.remainingSeconds()));

    // "0 disables" needs no special-casing at call sites.
    const MonotonicDeadline zero(0);
    EXPECT_FALSE(zero.armed());
    EXPECT_FALSE(zero.expired());
}

TEST(MonotonicDeadline, ArmedExpiresAndCountsDown)
{
    const MonotonicDeadline soon(0.01);
    EXPECT_TRUE(soon.armed());
    EXPECT_LE(soon.remainingSeconds(), 0.01);
    const double t0 = monotonicSeconds();
    while (!soon.expired() && monotonicSeconds() - t0 < 5.0) {
    }
    EXPECT_TRUE(soon.expired());
    EXPECT_EQ(soon.remainingSeconds(), 0.0);

    const MonotonicDeadline later(3600);
    EXPECT_FALSE(later.expired());
    EXPECT_GT(later.remainingSeconds(), 3599.0);
}

// ---------------------------------------------------------------------
// Spawn, stdio pipes and output draining
// ---------------------------------------------------------------------

TEST(Subprocess, CapturesStdoutAndCleanExit)
{
    Subprocess p;
    p.spawn(shell("echo out-line"));
    std::string out;
    const ExitStatus st = p.wait(10.0, &out);
    EXPECT_TRUE(st.exitedOk());
    EXPECT_FALSE(st.crashed());
    EXPECT_EQ(out, "out-line\n");
    EXPECT_EQ(st.describe(), "exit 0");
}

TEST(Subprocess, StdinPipeFeedsChildAndEofEndsIt)
{
    Subprocess p;
    p.spawn(shell("cat"));
    EXPECT_TRUE(p.writeStdin("fed through the pipe\n"));
    p.closeStdin(); // EOF: cat drains and exits
    std::string out;
    const ExitStatus st = p.wait(10.0, &out);
    EXPECT_TRUE(st.exitedOk());
    EXPECT_EQ(out, "fed through the pipe\n");
}

TEST(Subprocess, ExtraEnvReachesChild)
{
    SpawnOptions opts = shell("printf '%s' \"$POWERCHOP_TEST_VAR\"");
    opts.extraEnv = {"POWERCHOP_TEST_VAR=from-parent"};
    Subprocess p;
    p.spawn(opts);
    std::string out;
    EXPECT_TRUE(p.wait(10.0, &out).exitedOk());
    EXPECT_EQ(out, "from-parent");
}

TEST(Subprocess, ReadAvailableNeverBlocks)
{
    // A child that stays silent must not stall the caller: the
    // supervisor's event loop polls dozens of workers per tick.
    Subprocess p;
    p.spawn(shell("sleep 10"));
    const double t0 = monotonicSeconds();
    EXPECT_EQ(p.readAvailable(), "");
    EXPECT_LT(monotonicSeconds() - t0, 1.0);
    p.killHard();
}

// ---------------------------------------------------------------------
// Death classification
// ---------------------------------------------------------------------

TEST(Subprocess, ErrorExitIsClassifiedByCode)
{
    Subprocess p;
    p.spawn(shell("exit 7"));
    const ExitStatus st = p.wait(10.0);
    EXPECT_EQ(st.kind, ExitStatus::Kind::Exited);
    EXPECT_EQ(st.exitCode, 7);
    EXPECT_TRUE(st.crashed());
    EXPECT_FALSE(st.exitedOk());
    EXPECT_EQ(st.describe(), "exit 7");
}

TEST(Subprocess, FatalSignalIsClassifiedApartFromExit)
{
    // "killed by a signal" and "exited non-zero" are different
    // failure modes: the supervisor reports a crash with the signal
    // name, not a fabricated exit code.
    Subprocess p;
    p.spawn(shell("kill -SEGV $$"));
    const ExitStatus st = p.wait(10.0);
    EXPECT_EQ(st.kind, ExitStatus::Kind::Signaled);
    EXPECT_EQ(st.signal, SIGSEGV);
    EXPECT_TRUE(st.crashed());
    EXPECT_NE(st.describe().find("signal 11"), std::string::npos);
}

TEST(Subprocess, KillHardReapsAndPollStaysTerminal)
{
    Subprocess p;
    p.spawn(shell("sleep 30"));
    EXPECT_TRUE(p.poll().running());
    p.killHard();
    const ExitStatus st = p.poll();
    EXPECT_EQ(st.kind, ExitStatus::Kind::Signaled);
    EXPECT_EQ(st.signal, SIGKILL);
    // The terminal classification is cached, not re-derived.
    EXPECT_EQ(p.poll().signal, SIGKILL);
}

TEST(Subprocess, ExecFailureSurfacesAsExit127)
{
    Subprocess p;
    SpawnOptions opts;
    opts.argv = {"/nonexistent/powerchop-worker"};
    p.spawn(opts);
    const ExitStatus st = p.wait(10.0);
    EXPECT_EQ(st.kind, ExitStatus::Kind::Exited);
    EXPECT_EQ(st.exitCode, 127);
}

TEST(Subprocess, WriteToDeadChildReportsEpipeNotSignal)
{
    // The worker dying between poll() and writeStdin() must surface
    // as a false return, not a SIGPIPE that kills the supervisor.
    Subprocess p;
    p.spawn(shell("exit 0"));
    while (p.poll().running()) {
    }
    // The pipe buffer can absorb small writes even with no reader
    // process; keep writing until the kernel reports the break.
    const std::string chunk(64 * 1024, 'x');
    bool saw_epipe = false;
    for (int i = 0; i < 64 && !saw_epipe; ++i)
        saw_epipe = !p.writeStdin(chunk);
    EXPECT_TRUE(saw_epipe);
}

TEST(Subprocess, LargeBatchToSlowReaderIsDeliveredIntact)
{
    // Regression: the stdin pipe is nonblocking, so a batch larger
    // than the pipe capacity (~64 KiB on Linux) written to a child
    // that isn't reading yet hits EAGAIN mid-write. writeStdin must
    // park in poll(POLLOUT) and resume, not drop the tail or fail.
    Subprocess p;
    p.spawn(shell("sleep 0.3; wc -c"));
    const std::string batch(340 * 1024 + 17, 'k');
    EXPECT_TRUE(p.writeStdin(batch));
    p.closeStdin();
    std::string out;
    const ExitStatus st = p.wait(30.0, &out);
    EXPECT_TRUE(st.exitedOk());
    EXPECT_EQ(out, std::to_string(batch.size()) + "\n")
        << "child saw a truncated batch";
}

TEST(Subprocess, WaitTimeoutLeavesChildRunning)
{
    // wait() never kills on timeout: whether a survivor is a
    // straggler to re-dispatch or a hang to SIGKILL is the
    // supervisor's call.
    Subprocess p;
    p.spawn(shell("sleep 30"));
    const double t0 = monotonicSeconds();
    const ExitStatus st = p.wait(0.05);
    EXPECT_TRUE(st.running());
    EXPECT_LT(monotonicSeconds() - t0, 5.0);
    p.killHard();
    EXPECT_FALSE(p.poll().running());
}

TEST(Subprocess, DestructorContainsRunningChild)
{
    // A throwing supervisor must not leak orphan workers; the
    // destructor SIGKILLs and reaps. Observable here as: the block
    // finishes promptly instead of waiting out the sleep.
    const double t0 = monotonicSeconds();
    {
        Subprocess p;
        p.spawn(shell("sleep 30"));
        EXPECT_TRUE(p.poll().running());
    }
    EXPECT_LT(monotonicSeconds() - t0, 5.0);
}

TEST(Subprocess, MoveTransfersOwnership)
{
    Subprocess a;
    a.spawn(shell("echo moved"));
    Subprocess b = std::move(a);
    std::string out;
    EXPECT_TRUE(b.wait(10.0, &out).exitedOk());
    EXPECT_EQ(out, "moved\n");
}

} // namespace
