/**
 * @file
 * Tests for the telemetry subsystem: the trace recorder and its event
 * classes, the Chrome trace-event JSON exporter, trace determinism
 * across worker counts, the metrics registry and per-window
 * collector, and the wall-clock stage profiler.
 */

#include <cstdlib>
#include <gtest/gtest.h>

#include "common/logging.hh"
#include "powerchop/powerchop.hh"

using namespace powerchop;
using namespace powerchop::telemetry;

namespace
{

/** A small two-phase workload whose compute phase has no SIMD work,
 *  so the CDE demonstrably gates the VPU once profiling completes. */
WorkloadSpec
smallWorkload(unsigned seed = 7)
{
    WorkloadSpec w;
    w.name = "telemetry-small-" + std::to_string(seed);
    w.seed = seed;
    PhaseSpec compute;
    compute.name = "compute";
    compute.simdFrac = 0.0;
    PhaseSpec memory;
    memory.name = "memory";
    memory.memFrac = 0.3;
    memory.mem.workingSetBytes = 256 * 1024;
    memory.mem.hotRegionFrac = 0.8;
    memory.mem.randomFrac = 0.5;
    w.phases = {compute, memory};
    w.schedule = {{0, 60'000}, {1, 90'000}};
    return w;
}

/** Count events of one kind in a recorder. */
std::size_t
countKind(const TraceRecorder &trace, TraceEventKind kind)
{
    std::size_t n = 0;
    for (const auto &e : trace.events())
        if (e.kind == kind)
            ++n;
    return n;
}

/**
 * Minimal structural JSON validation: every brace/bracket outside a
 * string literal must balance, and the document must be one object.
 * Not a full parser, but catches unterminated strings, trailing
 * garbage and mismatched nesting — the failure modes of a
 * hand-rolled emitter.
 */
bool
jsonBalanced(const std::string &doc)
{
    std::vector<char> stack;
    bool in_string = false;
    bool escaped = false;
    for (char c : doc) {
        if (in_string) {
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"')
                in_string = false;
            continue;
        }
        switch (c) {
          case '"': in_string = true; break;
          case '{': stack.push_back('}'); break;
          case '[': stack.push_back(']'); break;
          case '}':
          case ']':
            if (stack.empty() || stack.back() != c)
                return false;
            stack.pop_back();
            break;
          default: break;
        }
    }
    return stack.empty() && !in_string;
}

/** RAII environment-variable override. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        if (old) {
            had_ = true;
            old_ = old;
        }
        if (value)
            setenv(name, value, 1);
        else
            unsetenv(name);
    }
    ~ScopedEnv()
    {
        if (had_)
            setenv(name_, old_.c_str(), 1);
        else
            unsetenv(name_);
    }

  private:
    const char *name_;
    bool had_ = false;
    std::string old_;
};

} // namespace

// --- TraceRecorder -----------------------------------------------------------

TEST(TraceRecorder, RecordsTypedEventsWithCurrentTimestamps)
{
    TraceRecorder trace;
    trace.beginRun("w", "m", "powerchop", TelemetryParams{});

    trace.setNow(100, 250.5);
    trace.gateState(GateUnit::Vpu, 0, 530.0);
    trace.setNow(200, 500.0);
    trace.window(1, 100, 0.4);
    trace.phase(0xdeadbeef);
    trace.cde(CdeEvent::Install, 0b101);
    trace.qosViolation();
    trace.safeMode(true);
    trace.safeMode(false);
    trace.fault(FaultEvent::HtbDrop);
    trace.endRun(250, 600.0);

    ASSERT_EQ(trace.events().size(), 8u);
    const auto &gate = trace.events()[0];
    EXPECT_EQ(gate.kind, TraceEventKind::GateVpu);
    EXPECT_EQ(gate.insns, 100u);
    EXPECT_DOUBLE_EQ(gate.cycles, 250.5);
    EXPECT_EQ(gate.a0, 0u);
    EXPECT_DOUBLE_EQ(gate.d, 530.0);

    const auto &win = trace.events()[1];
    EXPECT_EQ(win.kind, TraceEventKind::Window);
    EXPECT_EQ(win.insns, 200u);
    EXPECT_EQ(win.a0, 1u);
    EXPECT_EQ(win.a1, 100u);
    EXPECT_DOUBLE_EQ(win.d, 0.4);

    EXPECT_EQ(trace.events()[2].a0, 0xdeadbeefu);
    EXPECT_EQ(trace.events()[3].a1, 0b101u);
    EXPECT_EQ(trace.events()[5].kind, TraceEventKind::SafeModeEnter);
    EXPECT_EQ(trace.events()[6].kind, TraceEventKind::SafeModeExit);
    EXPECT_EQ(trace.events()[7].kind, TraceEventKind::Fault);

    EXPECT_EQ(trace.workload(), "w");
    EXPECT_EQ(trace.machine(), "m");
    EXPECT_EQ(trace.mode(), "powerchop");
    EXPECT_EQ(trace.endInsns(), 250u);
    EXPECT_DOUBLE_EQ(trace.endCycles(), 600.0);
    EXPECT_EQ(trace.droppedEvents(), 0u);
}

TEST(TraceRecorder, ClassSwitchesFilterEvents)
{
    TelemetryParams params;
    params.traceGating = false;
    params.traceQos = false;

    TraceRecorder trace;
    trace.beginRun("w", "m", "powerchop", params);
    trace.gateState(GateUnit::Bpu, 1, 0.0);
    trace.qosViolation();
    trace.safeMode(true);
    trace.window(1, 10, 1.0);

    ASSERT_EQ(trace.events().size(), 1u);
    EXPECT_EQ(trace.events()[0].kind, TraceEventKind::Window);
}

TEST(TraceRecorder, CapDropsAndCounts)
{
    TelemetryParams params;
    params.maxEvents = 3;

    TraceRecorder trace;
    trace.beginRun("w", "m", "powerchop", params);
    for (unsigned i = 0; i < 5; ++i)
        trace.window(i, 10, 1.0);

    EXPECT_EQ(trace.events().size(), 3u);
    EXPECT_EQ(trace.droppedEvents(), 2u);
}

TEST(TraceRecorder, BeginRunResetsBuffer)
{
    TraceRecorder trace;
    trace.beginRun("a", "m", "powerchop", TelemetryParams{});
    trace.window(1, 10, 1.0);
    trace.beginRun("b", "m", "powerchop", TelemetryParams{});
    EXPECT_TRUE(trace.events().empty());
    EXPECT_EQ(trace.workload(), "b");
}

TEST(TraceRecorder, ParamsValidateRejectsZeroCap)
{
    TelemetryParams params;
    params.maxEvents = 0;
    EXPECT_THROW(params.validate("test"), FatalError);
}

TEST(Telemetry, JsonEscape)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
    EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(Telemetry, EnumNames)
{
    EXPECT_STREQ(gateUnitName(GateUnit::Vpu), "VPU");
    EXPECT_STREQ(gateUnitName(GateUnit::Mlc), "MLC");
    EXPECT_STREQ(cdeEventName(CdeEvent::PvtHit), "pvt-hit");
    EXPECT_STREQ(faultEventName(FaultEvent::PolicyCorrupt),
                 "policy-corrupt");
}

// --- Chrome trace export -----------------------------------------------------

TEST(ChromeTrace, EmitsStructurallyValidJson)
{
    TraceRecorder trace;
    trace.beginRun("wl \"quoted\"", "server", "powerchop",
                   TelemetryParams{});
    trace.setNow(100, 1000);
    trace.gateState(GateUnit::Vpu, 0, 530.0);
    trace.gateState(GateUnit::Bpu, 0, 20.0);
    trace.gateState(GateUnit::Mlc, 0b01, 50.0);
    trace.window(1, 100, 0.5);
    trace.endRun(200, 2000);

    const std::string doc = chromeTraceJson(trace);
    EXPECT_TRUE(jsonBalanced(doc));
    EXPECT_NE(doc.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(doc.find("\"displayTimeUnit\":\"ms\""),
              std::string::npos);
    // The run's process is named after its identity, escaped.
    EXPECT_NE(doc.find("wl \\\"quoted\\\" on server [powerchop]"),
              std::string::npos);
    // All three unit tracks are declared...
    EXPECT_NE(doc.find("\"VPU gate\""), std::string::npos);
    EXPECT_NE(doc.find("\"BPU gate\""), std::string::npos);
    EXPECT_NE(doc.find("\"MLC ways\""), std::string::npos);
    // ...and each carries gate-state spans.
    EXPECT_NE(doc.find("\"name\":\"gated\""), std::string::npos);
    EXPECT_NE(doc.find("\"name\":\"half\""), std::string::npos);
    EXPECT_NE(doc.find("\"stall_cycles\""), std::string::npos);
}

TEST(ChromeTrace, SkipsNullRunsAndMergesMultiple)
{
    TraceRecorder a, b;
    a.beginRun("first", "m", "powerchop", TelemetryParams{});
    a.endRun(10, 100);
    b.beginRun("second", "m", "powerchop", TelemetryParams{});
    b.endRun(10, 100);

    const std::string doc = chromeTraceJson({&a, nullptr, &b});
    EXPECT_TRUE(jsonBalanced(doc));
    EXPECT_NE(doc.find("first"), std::string::npos);
    EXPECT_NE(doc.find("second"), std::string::npos);
    // Distinct pids; the null slot keeps its pid so run indices stay
    // stable across partial batches.
    EXPECT_NE(doc.find("\"pid\":1"), std::string::npos);
    EXPECT_EQ(doc.find("\"pid\":2"), std::string::npos);
    EXPECT_NE(doc.find("\"pid\":3"), std::string::npos);
}

// --- Simulation integration --------------------------------------------------

TEST(TelemetryIntegration, PowerChopRunRecordsGatingActivity)
{
    TraceRecorder trace;
    SimOptions opts;
    opts.mode = SimMode::PowerChop;
    opts.maxInstructions = 400'000;
    opts.trace = &trace;
    simulate(serverConfig(), smallWorkload(), opts);

    // The zero-SIMD compute phase must gate the VPU at least once.
    EXPECT_GT(countKind(trace, TraceEventKind::GateVpu), 0u);
    // Windows and phases always report.
    EXPECT_GT(countKind(trace, TraceEventKind::Window), 0u);
    EXPECT_GT(countKind(trace, TraceEventKind::Phase), 0u);
    // CDE decisions were recorded.
    EXPECT_GT(countKind(trace, TraceEventKind::Cde), 0u);
    EXPECT_EQ(trace.mode(), "powerchop");
    EXPECT_GT(trace.endInsns(), 0u);

    // The export renders cleanly with spans for all three units.
    const std::string doc = chromeTraceJson(trace);
    EXPECT_TRUE(jsonBalanced(doc));
    EXPECT_NE(doc.find("\"VPU gate\""), std::string::npos);
    EXPECT_NE(doc.find("\"name\":\"gated\""), std::string::npos);
}

TEST(TelemetryIntegration, TracingDoesNotPerturbResults)
{
    const WorkloadSpec w = smallWorkload();
    SimOptions plain;
    plain.mode = SimMode::PowerChop;
    plain.maxInstructions = 300'000;
    const SimResult base = simulate(serverConfig(), w, plain);

    TraceRecorder trace;
    MetricsRegistry metrics;
    SimOptions instrumented = plain;
    instrumented.trace = &trace;
    instrumented.metrics = &metrics;
    const SimResult traced = simulate(serverConfig(), w, instrumented);

    EXPECT_EQ(base.toJson(), traced.toJson());
    EXPECT_EQ(base.cycles, traced.cycles);
    EXPECT_EQ(base.instructions, traced.instructions);
    EXPECT_FALSE(trace.events().empty());
    EXPECT_FALSE(metrics.rows().empty());
}

TEST(TelemetryIntegration, TraceBytesIdenticalAcrossWorkerCounts)
{
    // The acceptance bar of the tracing design: the merged trace of a
    // batch is byte-identical no matter how many workers ran it.
    const InsnCount insns = 150'000;
    auto run_batch = [&](unsigned threads,
                         std::vector<TraceRecorder> &traces) {
        std::vector<SimJob> jobs;
        for (unsigned seed = 1; seed <= 4; ++seed) {
            SimJob job;
            job.machine = seed % 2 ? serverConfig() : mobileConfig();
            job.workload = smallWorkload(seed);
            job.opts.mode = SimMode::PowerChop;
            job.opts.maxInstructions = insns;
            job.opts.trace = &traces[seed - 1];
            jobs.push_back(std::move(job));
        }
        SimJobRunner runner(threads);
        runner.run(jobs);
        std::vector<const TraceRecorder *> ptrs;
        for (const auto &t : traces)
            ptrs.push_back(&t);
        return chromeTraceJson(ptrs);
    };

    std::vector<TraceRecorder> serial_traces(4), parallel_traces(4);
    const std::string serial = run_batch(1, serial_traces);
    const std::string parallel = run_batch(3, parallel_traces);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
}

// --- MetricsRegistry ---------------------------------------------------------

TEST(MetricsRegistry, ProbesSnapshotIntoRows)
{
    MetricsRegistry reg;
    double x = 1.5;
    reg.addProbe("x", [&] { return x; });
    reg.addProbe("twice_x", [&] { return 2 * x; });

    reg.snapshot(1, 100, 250.0);
    x = 3.0;
    reg.snapshot(2, 200, 500.0);

    ASSERT_EQ(reg.columnNames().size(), 2u);
    ASSERT_EQ(reg.rows().size(), 2u);
    EXPECT_EQ(reg.columnIndex("twice_x"), 1u);
    EXPECT_DOUBLE_EQ(reg.value(0, 0), 1.5);
    EXPECT_DOUBLE_EQ(reg.value(1, 1), 6.0);
    EXPECT_EQ(reg.rows()[1].window, 2u);
    EXPECT_EQ(reg.rows()[1].instructions, 200u);
    EXPECT_DOUBLE_EQ(reg.rows()[1].cycles, 500.0);
}

TEST(MetricsRegistry, SchemaFreezesAtFirstSnapshot)
{
    MetricsRegistry reg;
    reg.addProbe("a", [] { return 1.0; });
    reg.snapshot(1, 10, 10.0);
    EXPECT_THROW(reg.addProbe("b", [] { return 2.0; }), PanicError);
}

TEST(MetricsRegistry, RejectsDuplicateColumns)
{
    MetricsRegistry reg;
    reg.addProbe("a", [] { return 1.0; });
    EXPECT_THROW(reg.addProbe("a", [] { return 2.0; }), PanicError);
}

TEST(MetricsRegistry, ColumnIndexPanicsWhenAbsent)
{
    MetricsRegistry reg;
    EXPECT_THROW(reg.columnIndex("nope"), PanicError);
}

TEST(MetricsRegistry, AddGroupNamesGroupDotStat)
{
    stats::Scalar hits;
    hits += 7;
    stats::Average lat;
    lat.sample(2.0);
    stats::Group g("l2");
    g.addScalar("hits", &hits);
    g.addAverage("latency", &lat);

    MetricsRegistry reg;
    reg.addGroup(g);
    reg.snapshot(1, 10, 10.0);

    EXPECT_DOUBLE_EQ(reg.value(0, reg.columnIndex("l2.hits")), 7.0);
    EXPECT_DOUBLE_EQ(reg.value(0, reg.columnIndex("l2.latency")), 2.0);
}

TEST(MetricsRegistry, CsvAndJsonlRender)
{
    MetricsRegistry reg;
    reg.addProbe("ipc", [] { return 0.5; });
    reg.snapshot(1, 100, 400.0);

    EXPECT_EQ(reg.toCsv(),
              "window,instructions,cycles,ipc\n1,100,400,0.5\n");
    const std::string jsonl = reg.toJsonl();
    EXPECT_TRUE(jsonBalanced(jsonl));
    EXPECT_NE(jsonl.find("\"window\":1"), std::string::npos);
    EXPECT_NE(jsonl.find("\"ipc\":0.5"), std::string::npos);
}

TEST(MetricsRegistry, DetachedProbesKeepData)
{
    MetricsRegistry reg;
    reg.addProbe("x", [] { return 4.0; });
    reg.snapshot(1, 10, 10.0);
    reg.detachProbes();
    ASSERT_EQ(reg.rows().size(), 1u);
    EXPECT_DOUBLE_EQ(reg.value(0, 0), 4.0);
    EXPECT_EQ(reg.columnNames().size(), 1u);
}

TEST(MetricsCollector, SimulationProducesCanonicalSeries)
{
    MetricsRegistry reg;
    SimOptions opts;
    opts.mode = SimMode::PowerChop;
    opts.maxInstructions = 300'000;
    opts.metrics = &reg;
    const SimResult res = simulate(serverConfig(), smallWorkload(),
                                   opts);

    ASSERT_FALSE(reg.rows().empty());
    for (const char *col :
         {"window_instructions", "window_ipc", "crit_vpu", "crit_bpu",
          "crit_mlc", "mispred_large", "vpu_on", "mlc_active_frac",
          "vpu_leakage_j"}) {
        EXPECT_NO_THROW(reg.columnIndex(col)) << col;
    }

    // Every row is fully populated and windows count up from 1.
    const std::size_t cols = reg.columnNames().size();
    for (std::size_t i = 0; i < reg.rows().size(); ++i) {
        EXPECT_EQ(reg.rows()[i].values.size(), cols);
        EXPECT_EQ(reg.rows()[i].window, i + 1);
    }

    // Aggregate sanity: summed window instructions equal the run's.
    double summed = 0;
    const std::size_t wi = reg.columnIndex("window_instructions");
    for (std::size_t i = 0; i < reg.rows().size(); ++i)
        summed += reg.value(i, wi);
    EXPECT_LE(summed, static_cast<double>(res.instructions));
    EXPECT_GT(summed, 0.0);
}

// --- StageProfiler -----------------------------------------------------------

TEST(StageProfiler, DisabledRecordsNothing)
{
    StageProfiler prof(false);
    prof.record("simulate", 1.0);
    EXPECT_TRUE(prof.snapshot().empty());
}

TEST(StageProfiler, AccumulatesPerStageSortedByName)
{
    StageProfiler prof(true);
    prof.record("simulate", 1.0);
    prof.record("simulate", 0.5);
    prof.record("retry", 0.25);

    const auto stages = prof.snapshot();
    ASSERT_EQ(stages.size(), 2u);
    EXPECT_EQ(stages[0].name, "retry");
    EXPECT_EQ(stages[0].count, 1u);
    EXPECT_EQ(stages[1].name, "simulate");
    EXPECT_DOUBLE_EQ(stages[1].seconds, 1.5);
    EXPECT_EQ(stages[1].count, 2u);

    prof.reset();
    EXPECT_TRUE(prof.snapshot().empty());
}

TEST(StageProfiler, ScopedTimerToleratesNullAndStops)
{
    ScopedStageTimer null_timer(nullptr, "nothing"); // Must not crash.
    null_timer.stop();

    StageProfiler prof(true);
    {
        ScopedStageTimer t(&prof, "stage");
        t.stop();
        t.stop(); // Idempotent: records once.
    }
    const auto stages = prof.snapshot();
    ASSERT_EQ(stages.size(), 1u);
    EXPECT_EQ(stages[0].count, 1u);
    EXPECT_GE(stages[0].seconds, 0.0);
}

TEST(StageProfiler, EnabledByEnvParsesKnob)
{
    {
        ScopedEnv env("POWERCHOP_PROFILE", "1");
        EXPECT_TRUE(StageProfiler::enabledByEnv());
    }
    {
        ScopedEnv env("POWERCHOP_PROFILE", "0");
        EXPECT_FALSE(StageProfiler::enabledByEnv());
    }
    {
        ScopedEnv env("POWERCHOP_PROFILE", nullptr);
        EXPECT_FALSE(StageProfiler::enabledByEnv());
    }
}
