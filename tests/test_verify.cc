/**
 * @file
 * Tests for the verification subsystem: the reference-simulator
 * differential oracle, the invariant auditor, the golden snapshot
 * store, and regression tests for the accounting bugs the oracle
 * flushed out of the optimized simulate() loop (lost tail
 * attribution, stale trace timestamps, inconsistent instruction-count
 * denominators).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>

#include "common/logging.hh"
#include "sim/machine_config.hh"
#include "sim/sim_runner.hh"
#include "sim/simulator.hh"
#include "telemetry/trace.hh"
#include "verify/differential.hh"
#include "verify/golden.hh"
#include "verify/invariant_auditor.hh"
#include "verify/reference_simulator.hh"
#include "workload/suites.hh"

using namespace powerchop;
using namespace powerchop::verify;

namespace
{

WorkloadSpec
smallWorkload()
{
    WorkloadSpec w;
    w.name = "small";
    w.seed = 5;
    PhaseSpec compute;
    compute.name = "compute";
    compute.simdFrac = 0.05;
    PhaseSpec memory;
    memory.name = "memory";
    memory.memFrac = 0.32;
    memory.mem.workingSetBytes = 256 * 1024;
    memory.mem.hotRegionFrac = 0.8;
    memory.mem.randomFrac = 0.5;
    w.phases = {compute, memory};
    w.schedule = {{0, 150'000}, {1, 250'000}};
    return w;
}

/** One strongly hot phase: after warm-up nearly every instruction
 *  executes inside translated regions, which the tail-flush
 *  regression test depends on. */
WorkloadSpec
hotWorkload()
{
    WorkloadSpec w;
    w.name = "hot";
    w.seed = 7;
    PhaseSpec p;
    p.name = "hot";
    p.coldEscapeProb = 0.0;
    w.phases = {p};
    w.schedule = {{0, 100'000}};
    return w;
}

SimResult
run(SimMode mode, InsnCount insns = 200'000, bool audit = false)
{
    SimOptions opts;
    opts.mode = mode;
    opts.maxInstructions = insns;
    opts.audit = audit;
    return simulate(serverConfig(), smallWorkload(), opts);
}

void
expectBitIdentical(const SimResult &a, const SimResult &b)
{
    auto mismatches = compareResults(a, b, 0.0);
    EXPECT_TRUE(mismatches.empty());
    for (const auto &m : mismatches)
        ADD_FAILURE() << m.key << ": " << m.detail;
}

/** RAII environment-variable override. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        if (old) {
            had_ = true;
            old_ = old;
        }
        if (value)
            setenv(name, value, 1);
        else
            unsetenv(name);
    }
    ~ScopedEnv()
    {
        if (had_)
            setenv(name_, old_.c_str(), 1);
        else
            unsetenv(name_);
    }

  private:
    const char *name_;
    bool had_ = false;
    std::string old_;
};

constexpr SimMode allModes[] = {
    SimMode::FullPower,  SimMode::PowerChop,    SimMode::MinPower,
    SimMode::TimeoutVpu, SimMode::StaticPolicy, SimMode::DrowsyMlc,
};

} // namespace

// --- differential oracle -----------------------------------------------------

TEST(Differential, ReferenceMatchesOptimizedAcrossModes)
{
    const WorkloadSpec w = smallWorkload();
    for (SimMode mode : allModes) {
        for (const MachineConfig &m : {serverConfig(), mobileConfig()}) {
            SimOptions opts;
            opts.mode = mode;
            opts.maxInstructions = 120'000;
            SCOPED_TRACE(std::string(simModeName(mode)) + " on " +
                         m.name);
            expectBitIdentical(simulate(m, w, opts),
                               referenceSimulate(m, w, opts));
        }
    }
}

TEST(Differential, ReferenceMatchesOptimizedUnderFaults)
{
    WorkloadSpec w = smallWorkload();
    for (std::uint64_t seed : {11ull, 1009ull}) {
        MachineConfig m = serverConfig();
        m.faults.enabled = true;
        m.faults.seed = seed;
        m.faults.policyCorruptRate = 0.05;
        m.faults.htbDropRate = 0.02;
        m.faults.htbAliasRate = 0.02;
        m.faults.controllerFlipRate = 0.05;
        m.faults.wakeupStretchRate = 0.1;

        SimOptions opts;
        opts.mode = SimMode::PowerChop;
        opts.maxInstructions = 150'000;
        SCOPED_TRACE("fault seed " + std::to_string(seed));
        expectBitIdentical(simulate(m, w, opts),
                           referenceSimulate(m, w, opts));
    }
}

TEST(Differential, ReferenceMatchesOptimizedWithSampler)
{
    // The countdown sampler vs the reference's modulo: both must fire
    // at the same instruction counts with the same cycle stamps.
    const WorkloadSpec w = smallWorkload();
    const MachineConfig m = serverConfig();

    auto sample = [](const MachineConfig &mc, const WorkloadSpec &wl,
                     bool reference) {
        std::vector<std::pair<InsnCount, Cycles>> samples;
        SimOptions opts;
        opts.mode = SimMode::PowerChop;
        opts.maxInstructions = 100'000;
        opts.sampleInterval = 7'919; // prime: no block alignment
        opts.sampler = [&](InsnCount i, Cycles c) {
            samples.emplace_back(i, c);
        };
        SimResult r = reference ? referenceSimulate(mc, wl, opts)
                                : simulate(mc, wl, opts);
        (void)r;
        return samples;
    };

    auto opt = sample(m, w, false);
    auto ref = sample(m, w, true);
    ASSERT_EQ(opt.size(), ref.size());
    ASSERT_FALSE(opt.empty());
    for (std::size_t i = 0; i < opt.size(); ++i) {
        EXPECT_EQ(opt[i].first, ref[i].first);
        EXPECT_EQ(opt[i].second, ref[i].second);
    }
}

TEST(Differential, MatrixRunnerReportsAllCasesOk)
{
    DifferentialMatrix matrix;
    matrix.insns = 60'000;
    matrix.workloads = {"perlbench"};
    matrix.machines = {"server"};
    matrix.modes = {SimMode::FullPower, SimMode::PowerChop};
    matrix.faultSeeds = {0, 42};

    std::size_t announced = 0;
    DifferentialReport report = runDifferentialMatrix(
        matrix, [&](const DifferentialCase &) { ++announced; });

    EXPECT_EQ(report.outcomes.size(), 4u);
    EXPECT_EQ(announced, 4u);
    EXPECT_TRUE(report.ok()) << report.toString();
    EXPECT_EQ(report.failures(), 0u);
    EXPECT_NE(report.toString().find("all 4 cases ok"),
              std::string::npos);
}

TEST(Differential, RunnerJobsBitIdenticalToReferenceAcrossWorkerCounts)
{
    // The oracle also pins the parallel runner: any worker count must
    // produce exactly the reference's results.
    const WorkloadSpec w = smallWorkload();
    const MachineConfig m = serverConfig();
    SimOptions opts;
    opts.mode = SimMode::PowerChop;
    opts.maxInstructions = 80'000;

    SimResult reference = referenceSimulate(m, w, opts);

    std::vector<SimJob> jobs(3, SimJob{m, w, opts});
    for (unsigned workers : {1u, 3u}) {
        ScopedEnv env("POWERCHOP_JOBS", nullptr);
        SimJobRunner runner(workers);
        std::vector<SimResult> results = runner.run(jobs);
        ASSERT_EQ(results.size(), jobs.size());
        for (const auto &r : results) {
            SCOPED_TRACE(std::to_string(workers) + " workers");
            expectBitIdentical(r, reference);
        }
    }
}

// --- invariant auditor -------------------------------------------------------

TEST(InvariantAuditor, CleanRunPassesAllModes)
{
    InvariantAuditor auditor;
    const MachineConfig m = serverConfig();
    for (SimMode mode : allModes) {
        SimResult r = run(mode);
        AuditReport rep = auditor.audit(r, m);
        EXPECT_TRUE(rep.ok())
            << simModeName(mode) << ": " << rep.toString();
        EXPECT_GT(rep.checks, 40u);
        EXPECT_NE(rep.toString().find("ok"), std::string::npos);
    }
}

TEST(InvariantAuditor, CatchesResidencyLeak)
{
    SimResult r = run(SimMode::PowerChop);
    r.gating.mlcFullCycles += 12'345; // a lost window of cycles
    InvariantAuditor auditor;
    AuditReport rep = auditor.audit(r);
    EXPECT_FALSE(rep.ok());
    EXPECT_TRUE(rep.has("mlc-residency-conservation"))
        << rep.toString();
}

TEST(InvariantAuditor, CatchesFractionDrift)
{
    SimResult r = run(SimMode::MinPower);
    r.vpuGatedFraction *= 0.5;
    InvariantAuditor auditor;
    EXPECT_TRUE(auditor.audit(r).has("fraction-consistency"));
}

TEST(InvariantAuditor, CatchesWrongRateDenominator)
{
    // MinPower keeps the VPU gated, so SIMD emulation inflates
    // slotOps past the committed-instruction count.
    SimResult r = run(SimMode::MinPower);
    ASSERT_GT(r.mlcAccesses, 0u);
    ASSERT_NE(r.slotOps, static_cast<double>(r.instructions));
    // The exact bug class satellite 3 fixed: dividing by slot ops
    // instead of the canonical committed-instruction count.
    r.mlcAccessesPerKilo =
        1000.0 * static_cast<double>(r.mlcAccesses) / r.slotOps;
    InvariantAuditor auditor;
    EXPECT_TRUE(auditor.audit(r).has("rate-denominator"));
}

TEST(InvariantAuditor, CatchesCounterBoundViolation)
{
    SimResult r = run(SimMode::PowerChop);
    r.pvtHits = r.pvtLookups + 1;
    InvariantAuditor auditor;
    EXPECT_TRUE(auditor.audit(r).has("counter-bound"));
}

TEST(InvariantAuditor, CatchesEnergyTampering)
{
    const MachineConfig m = serverConfig();
    SimResult r = run(SimMode::PowerChop);
    r.energy.unit(Unit::Vpu).leakage += 1e-3;
    InvariantAuditor auditor;
    EXPECT_TRUE(auditor.audit(r, m).has("energy-recompute"));
}

TEST(InvariantAuditor, CatchesSlotOpTampering)
{
    const MachineConfig m = serverConfig();
    SimResult r = run(SimMode::MinPower); // VPU gated: emulation on
    ASSERT_GT(r.simdEmulated, 0u);
    r.slotOps = static_cast<double>(r.instructions) - 5;
    InvariantAuditor auditor;
    EXPECT_TRUE(auditor.audit(r, m).has("slot-op-consistency"));
}

TEST(InvariantAuditor, CatchesNonFiniteValues)
{
    SimResult r = run(SimMode::FullPower);
    r.seconds = std::numeric_limits<double>::quiet_NaN();
    InvariantAuditor auditor;
    EXPECT_TRUE(auditor.audit(r).has("finite-values"));
}

TEST(InvariantAuditor, CatchesGatingInFullPowerMode)
{
    const MachineConfig m = serverConfig();
    SimResult r = run(SimMode::FullPower);
    r.gating.vpuSwitches = 2;
    InvariantAuditor auditor;
    EXPECT_TRUE(auditor.audit(r, m).has("full-power-never-gates"));
}

TEST(InvariantAuditor, TraceAuditAcceptsRealRunAndRejectsRewinds)
{
    MachineConfig m = serverConfig();
    telemetry::TraceRecorder trace;
    SimOptions opts;
    opts.mode = SimMode::PowerChop;
    opts.maxInstructions = 120'000;
    opts.trace = &trace;
    simulate(m, smallWorkload(), opts);

    InvariantAuditor auditor;
    ASSERT_FALSE(trace.events().empty());
    AuditReport rep = auditor.auditTrace(trace);
    EXPECT_TRUE(rep.ok()) << rep.toString();

    // A hand-built rewinding trace must be rejected.
    telemetry::TraceRecorder bad;
    bad.beginRun("w", "m", "mode", {});
    bad.setNow(100, 1000.0);
    bad.qosViolation();
    bad.setNow(100, 500.0); // clock rewound
    bad.qosViolation();
    bad.endRun(100, 500.0);
    EXPECT_TRUE(auditor.auditTrace(bad).has("trace-monotonic-cycles"));
}

TEST(InvariantAuditor, SimulateAuditOptionPassesCleanRuns)
{
    for (SimMode mode : allModes)
        EXPECT_NO_THROW(run(mode, 60'000, /*audit=*/true))
            << simModeName(mode);
}

TEST(InvariantAuditor, RunnerAuditsEveryJobUnderEnvFlag)
{
    ScopedEnv env("POWERCHOP_AUDIT", "1");
    const WorkloadSpec w = smallWorkload();
    const MachineConfig m = serverConfig();
    SimOptions opts;
    opts.mode = SimMode::PowerChop;
    opts.maxInstructions = 50'000;

    SimJobRunner runner(2);
    std::vector<SimJob> jobs(4, SimJob{m, w, opts});
    EXPECT_NO_THROW(runner.run(jobs));

    RobustBatchResult batch = runner.runRobust(jobs, {});
    for (const auto &outcome : batch.outcomes)
        EXPECT_EQ(outcome.status, JobStatus::Ok) << outcome.error;
}

// --- golden store ------------------------------------------------------------

TEST(Golden, ParseFlatJsonRoundTrip)
{
    SimResult r = run(SimMode::PowerChop, 50'000);
    FlatJson parsed = parseFlatJson(r.toJson());
    EXPECT_EQ(parsed.strings.at("workload"), "small");
    EXPECT_EQ(parsed.strings.at("mode"), "powerchop");
    EXPECT_EQ(parsed.numbers.at("instructions"), 50'000.0);
    EXPECT_TRUE(parsed.has("slot_ops"));
    EXPECT_TRUE(parsed.has("mlc_accesses"));
    EXPECT_GT(parsed.size(), 20u);
}

TEST(Golden, ParseRejectsMalformedInput)
{
    EXPECT_THROW(parseFlatJson("{\"a\":}"), GoldenParseError);
    EXPECT_THROW(parseFlatJson("{\"a\" 1}"), GoldenParseError);
    EXPECT_THROW(parseFlatJson("{\"a\":1"), GoldenParseError);
    EXPECT_THROW(parseFlatJson("\"not an object\""),
                 GoldenParseError);
    EXPECT_NO_THROW(parseFlatJson("{}"));
    EXPECT_NO_THROW(parseFlatJson("  { \"a\" : 1 , \"b\" : \"x\" } "));
}

TEST(Golden, DifferToleratesDriftWithinTolAndExtraKeys)
{
    FlatJson golden = parseFlatJson(
        "{\"mode\":\"powerchop\",\"cycles\":1000000,\"ipc\":1.25}");
    FlatJson candidate = parseFlatJson(
        "{\"mode\":\"powerchop\",\"cycles\":1000000.4,\"ipc\":1.25,"
        "\"new_metric\":3}");
    EXPECT_TRUE(diffGolden(golden, candidate, 1e-6).ok());
    // Tightening the tolerance below the drift flags it.
    EXPECT_FALSE(diffGolden(golden, candidate, 1e-9).ok());
}

TEST(Golden, DifferFlagsMissingKeysAndStringMismatch)
{
    FlatJson golden =
        parseFlatJson("{\"mode\":\"powerchop\",\"cycles\":5}");
    FlatJson missing = parseFlatJson("{\"mode\":\"powerchop\"}");
    GoldenDiff diff = diffGolden(golden, missing, 1e-6);
    ASSERT_EQ(diff.mismatches.size(), 1u);
    EXPECT_EQ(diff.mismatches[0].key, "cycles");
    EXPECT_NE(diff.toString().find("missing"), std::string::npos);

    FlatJson wrong_mode =
        parseFlatJson("{\"mode\":\"min-power\",\"cycles\":5}");
    EXPECT_FALSE(diffGolden(golden, wrong_mode, 1e-6).ok());
}

TEST(Golden, SaveLoadRoundTripAndMissingFile)
{
    const std::string path =
        ::testing::TempDir() + "powerchop-golden-test.json";
    SimResult r = run(SimMode::FullPower, 40'000);
    saveGolden(path, r.toJson());

    FlatJson loaded;
    ASSERT_TRUE(loadGolden(path, loaded));
    EXPECT_TRUE(diffGolden(loaded, parseFlatJson(r.toJson()), 0).ok());
    std::remove(path.c_str());

    FlatJson none;
    EXPECT_FALSE(loadGolden(path + ".does-not-exist", none));
}

TEST(Golden, GoldenFileNameIsCanonical)
{
    EXPECT_EQ(goldenFileName("mcf", "server", "powerchop"),
              "mcf-server-powerchop.json");
}

TEST(Golden, CompareResultsFlagsEveryTamperedField)
{
    SimResult a = run(SimMode::PowerChop, 50'000);
    SimResult b = a;
    EXPECT_TRUE(compareResults(a, b, 0.0).empty());

    b.cycles += 1;
    b.branchLookups += 1;
    auto mismatches = compareResults(a, b, 0.0);
    ASSERT_GE(mismatches.size(), 2u);
    bool saw_cycles = false, saw_branches = false;
    for (const auto &m : mismatches) {
        if (m.key == "cycles")
            saw_cycles = true;
        if (m.key == "branchLookups")
            saw_branches = true;
    }
    EXPECT_TRUE(saw_cycles);
    EXPECT_TRUE(saw_branches);
}

// --- regression: tail attribution flush (bugfix 1) ---------------------------

namespace
{

/** Instructions credited to translations through HTB windows, with
 *  windowSize=1 so every head (including the final flush) completes
 *  and reports a window. */
std::uint64_t
creditedInsns(InsnCount budget)
{
    MachineConfig m = serverConfig();
    m.powerChop.htb.windowSize = 1;
    SimOptions opts;
    opts.mode = SimMode::PowerChop;
    opts.maxInstructions = budget;
    std::uint64_t credited = 0;
    opts.windowObserver = [&](const WindowReport &r) {
        credited += r.instructions;
    };
    simulate(m, hotWorkload(), opts);
    return credited;
}

} // namespace

TEST(TailFlushRegression, TrailingInstructionsAreCredited)
{
    // Deep in a hot single-phase run every instruction executes in a
    // translated region, so with the tail flush in place extending
    // the budget by d must extend the credited total by exactly d.
    // Before the fix the instructions after the final head were
    // dropped, so the credited delta undershoots whenever the budget
    // ends mid-region (any d not aligned to a region boundary).
    const InsnCount base = 60'000;
    const std::uint64_t credited_base = creditedInsns(base);
    ASSERT_GT(credited_base, 0u);
    for (InsnCount d : {1u, 37u, 137u}) {
        EXPECT_EQ(creditedInsns(base + d) - credited_base, d)
            << "budget delta " << d;
    }
}

TEST(TailFlushRegression, LastWindowReachesTheObserver)
{
    // Coarse windows: a run that ends mid-window must still flush the
    // final translation's credit into the HTB (observable as credited
    // instructions strictly past the last full-window boundary).
    MachineConfig m = serverConfig();
    m.powerChop.htb.windowSize = 1;
    SimOptions opts;
    opts.mode = SimMode::PowerChop;
    opts.maxInstructions = 60'000;
    InsnCount last_report_end = 0;
    std::uint64_t credited = 0;
    opts.windowObserver = [&](const WindowReport &r) {
        credited += r.instructions;
        last_report_end = credited;
    };
    simulate(m, hotWorkload(), opts);
    // The final report must arrive after the loop drained: the tail
    // credit is included in the total.
    EXPECT_EQ(credited, last_report_end);
    EXPECT_GT(credited, 0u);
}

// --- regression: trace timestamps advance mid-window (bugfix 2) --------------

TEST(TraceClockRegression, CdeWorkCarriesPostStallTimestamps)
{
    // A PVT miss at a translation head costs a nucleus interrupt
    // before the CDE runs; the CDE's trace events must be stamped
    // after that stall, not with the head's timestamp. Before the
    // fix every event between two heads carried the head's cycle
    // count exactly.
    MachineConfig m = serverConfig();
    m.powerChop.htb.windowSize = 1;
    telemetry::TraceRecorder trace;
    SimOptions opts;
    opts.mode = SimMode::PowerChop;
    opts.maxInstructions = 120'000;
    opts.trace = &trace;
    simulate(m, smallWorkload(), opts);

    double last_window_cycles = -1;
    bool saw_advanced_cde = false;
    for (const auto &ev : trace.events()) {
        if (ev.kind == telemetry::TraceEventKind::Window) {
            last_window_cycles = ev.cycles;
        } else if (ev.kind == telemetry::TraceEventKind::Cde &&
                   last_window_cycles >= 0 &&
                   ev.cycles > last_window_cycles) {
            saw_advanced_cde = true;
        }
    }
    EXPECT_TRUE(saw_advanced_cde)
        << "every CDE event carries its window's head timestamp";

    // And the advanced clock must never overshoot the next head: the
    // whole trace stays monotonic, end stamp included.
    InvariantAuditor auditor;
    AuditReport rep = auditor.auditTrace(trace);
    EXPECT_TRUE(rep.ok()) << rep.toString();
}

TEST(TraceClockRegression, GateTransitionsAdvanceTheClock)
{
    // Consecutive unit transitions of one policy application are
    // serialized stalls; their gate events must carry increasing
    // cycle stamps rather than one shared timestamp.
    telemetry::TraceRecorder trace;
    SimOptions opts;
    opts.mode = SimMode::MinPower; // one applyPolicy gating all units
    opts.maxInstructions = 10'000;
    opts.trace = &trace;
    simulate(serverConfig(), smallWorkload(), opts);

    std::vector<double> gate_cycles;
    for (const auto &ev : trace.events()) {
        if (ev.kind == telemetry::TraceEventKind::GateVpu ||
            ev.kind == telemetry::TraceEventKind::GateBpu ||
            ev.kind == telemetry::TraceEventKind::GateMlc)
            gate_cycles.push_back(ev.cycles);
    }
    ASSERT_GE(gate_cycles.size(), 2u);
    bool strictly_advanced = false;
    for (std::size_t i = 1; i < gate_cycles.size(); ++i)
        if (gate_cycles[i] > gate_cycles[i - 1])
            strictly_advanced = true;
    EXPECT_TRUE(strictly_advanced)
        << "all gate events share one timestamp";
}

// --- regression: canonical instruction counts (bugfix 3) ---------------------

TEST(CanonicalCountsRegression, InstructionCountIsCommittedGuestCount)
{
    SimResult r = run(SimMode::MinPower, 100'000);
    EXPECT_EQ(r.instructions, 100'000u);

    // slotOps carries the emulated-SIMD expansion; instructions does
    // not. MinPower gates the VPU, so the two must differ and relate
    // exactly through the machine's expansion factor.
    ASSERT_GT(r.simdEmulated, 0u);
    EXPECT_DOUBLE_EQ(r.slotOps, r.activity.instructions);
    const MachineConfig m = serverConfig();
    const double expansion =
        m.vpu.width * m.vpu.emulationExpansion - 1.0;
    EXPECT_NEAR(r.slotOps,
                static_cast<double>(r.instructions) +
                    static_cast<double>(r.simdEmulated) * expansion,
                1e-6 * r.slotOps);
    EXPECT_GT(r.slotOps, static_cast<double>(r.instructions));
}

TEST(CanonicalCountsRegression, RatesDivideByInstructions)
{
    SimResult r = run(SimMode::MinPower, 100'000);
    ASSERT_GT(r.mlcAccesses, 0u);
    ASSERT_GT(r.branchLookups, 0u);
    EXPECT_DOUBLE_EQ(
        r.mlcAccessesPerKilo,
        1000.0 * static_cast<double>(r.mlcAccesses) / r.instructions);
    EXPECT_DOUBLE_EQ(
        r.branchesPerKilo,
        1000.0 * static_cast<double>(r.branchLookups) /
            r.instructions);
    EXPECT_DOUBLE_EQ(r.branchMispredictRate,
                     static_cast<double>(r.branchMispredicts) /
                         static_cast<double>(r.branchLookups));
}

TEST(CanonicalCountsRegression, RawCountersSurviveToJson)
{
    SimResult r = run(SimMode::PowerChop, 50'000);
    FlatJson j = parseFlatJson(r.toJson());
    EXPECT_EQ(j.numbers.at("slot_ops"), r.slotOps);
    EXPECT_EQ(j.numbers.at("mlc_accesses"),
              static_cast<double>(r.mlcAccesses));
    EXPECT_EQ(j.numbers.at("branch_lookups"),
              static_cast<double>(r.branchLookups));
    EXPECT_EQ(j.numbers.at("branch_mispredicts"),
              static_cast<double>(r.branchMispredicts));
    EXPECT_TRUE(j.has("branches_per_kilo"));
    EXPECT_TRUE(j.has("mlc_accesses_per_kilo"));
}

TEST(CanonicalCountsRegression, DefaultResultHasNoNans)
{
    // Guarded denominators: an all-zero (failed-job placeholder)
    // result must stay finite everywhere, and the auditor must accept
    // it as vacuously consistent.
    SimResult r;
    EXPECT_EQ(r.ipc(), 0.0);
    InvariantAuditor auditor;
    AuditReport rep = auditor.audit(r);
    EXPECT_TRUE(rep.ok()) << rep.toString();
}

// --- residency conservation end-to-end ---------------------------------------

TEST(ResidencyConservation, GatedPlusUngatedEqualsTotalEveryMode)
{
    // The bug the auditor was built to catch: transition-stall windows
    // were once excluded from residency accrual, so MLC residencies
    // summed short of the run's cycles in any mode that switches
    // policies.
    for (SimMode mode : allModes) {
        SimResult r = run(mode, 150'000);
        const double residency =
            r.gating.mlcFullCycles + r.gating.mlcHalfCycles +
            r.gating.mlcQuarterCycles + r.gating.mlcOneWayCycles;
        EXPECT_NEAR(residency, r.cycles, 1e-6 * r.cycles)
            << simModeName(mode);
        EXPECT_LE(r.gating.vpuGatedCycles, r.cycles * (1 + 1e-9))
            << simModeName(mode);
    }
}
