/**
 * @file
 * Unit tests for workload specs, the suite presets and the generator.
 */

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "workload/generator.hh"
#include "workload/suites.hh"

using namespace powerchop;

namespace
{

WorkloadSpec
tinySpec()
{
    WorkloadSpec w;
    w.name = "tiny";
    w.seed = 42;
    PhaseSpec a;
    a.name = "a";
    a.simdFrac = 0.1;
    PhaseSpec b;
    b.name = "b";
    b.simdFrac = 0.0;
    b.branchFrac = 0.1;
    w.phases = {a, b};
    w.schedule = {{0, 50'000}, {1, 50'000}};
    return w;
}

} // namespace

// --- spec validation ---------------------------------------------------------

TEST(WorkloadSpec, ValidatesPhaseIndices)
{
    WorkloadSpec w = tinySpec();
    w.schedule.push_back({7, 1000});
    EXPECT_THROW(w.validate(), FatalError);
}

TEST(WorkloadSpec, RejectsEmptyScheduleOrPhases)
{
    WorkloadSpec w = tinySpec();
    w.schedule.clear();
    EXPECT_THROW(w.validate(), FatalError);

    WorkloadSpec w2 = tinySpec();
    w2.phases.clear();
    EXPECT_THROW(w2.validate(), FatalError);
}

TEST(WorkloadSpec, RejectsZeroLengthEntry)
{
    WorkloadSpec w = tinySpec();
    w.schedule.push_back({0, 0});
    EXPECT_THROW(w.validate(), FatalError);
}

TEST(WorkloadSpec, ScheduleLength)
{
    EXPECT_EQ(tinySpec().scheduleLength(), 100'000u);
}

TEST(PhaseSpec, RejectsBadMixes)
{
    PhaseSpec p;
    p.simdFrac = 0.9;
    p.memFrac = 0.5;
    EXPECT_THROW(p.validate("t"), FatalError);

    PhaseSpec p2;
    p2.fracBiased = 0.9;
    p2.fracPattern = 0.3;
    EXPECT_THROW(p2.validate("t"), FatalError);

    PhaseSpec p3;
    p3.hotBlocks = 2;
    EXPECT_THROW(p3.validate("t"), FatalError);

    PhaseSpec p4;
    p4.hotWeightDecay = 1.0;
    EXPECT_THROW(p4.validate("t"), FatalError);
}

// --- suites -------------------------------------------------------------------

TEST(Suites, TwentyNineApplications)
{
    EXPECT_EQ(allWorkloads().size(), 29u);
    EXPECT_EQ(specIntSuite().size(), 10u);
    EXPECT_EQ(specFpSuite().size(), 7u);
    EXPECT_EQ(parsecSuite().size(), 6u);
    EXPECT_EQ(mobileBenchSuite().size(), 6u);
    EXPECT_EQ(serverWorkloads().size(), 23u);
    EXPECT_EQ(mobileWorkloads().size(), 6u);
}

TEST(Suites, UniqueNamesAndSeeds)
{
    std::set<std::string> names;
    std::set<std::uint64_t> seeds;
    for (const auto &w : allWorkloads()) {
        EXPECT_TRUE(names.insert(w.name).second) << w.name;
        EXPECT_TRUE(seeds.insert(w.seed).second) << w.name;
    }
}

TEST(Suites, AllSpecsValidate)
{
    for (const auto &w : allWorkloads())
        EXPECT_NO_THROW(w.validate()) << w.name;
}

TEST(Suites, FindWorkload)
{
    EXPECT_EQ(findWorkload("gobmk").name, "gobmk");
    EXPECT_EQ(findWorkload("msn").suite, Suite::MobileBench);
    EXPECT_THROW(findWorkload("doom"), FatalError);
}

TEST(Suites, SuiteNames)
{
    EXPECT_STREQ(suiteName(Suite::SpecInt), "SPEC-INT");
    EXPECT_STREQ(suiteName(Suite::MobileBench), "MobileBench");
}

// --- generator -----------------------------------------------------------------

TEST(Generator, Deterministic)
{
    WorkloadGenerator g1(tinySpec()), g2(tinySpec());
    for (int i = 0; i < 5000; ++i) {
        const DynInst &a = g1.next();
        const DynInst &b = g2.next();
        ASSERT_EQ(a.pc(), b.pc());
        ASSERT_EQ(a.op(), b.op());
        ASSERT_EQ(a.effAddr, b.effAddr);
        ASSERT_EQ(a.taken, b.taken);
    }
}

TEST(Generator, ProgramHasAllClusters)
{
    WorkloadGenerator g(tinySpec());
    const auto &spec = g.spec();
    std::size_t expect = 0;
    for (const auto &p : spec.phases)
        expect += p.hotBlocks + p.coldBlocks;
    EXPECT_EQ(g.program().numBlocks(), expect);
}

TEST(Generator, InstructionStreamShape)
{
    WorkloadGenerator g(tinySpec());
    InsnCount n = 0;
    std::map<OpClass, InsnCount> mix;
    while (n < 100'000) {
        const DynInst &di = g.next();
        ++n;
        ++mix[di.op()];
        if (di.si->isMemRef()) {
            EXPECT_NE(di.effAddr, 0u);
        }
        if (di.isTerminator) {
            EXPECT_TRUE(di.si->isBranch());
            EXPECT_TRUE(di.taken);
            EXPECT_NE(di.target, 0u);
        }
    }
    EXPECT_EQ(g.instructionsEmitted(), n);
    // Phase a contributes ~10% SIMD over its half of the schedule.
    double simd_frac = double(mix[OpClass::SimdOp]) / n;
    EXPECT_NEAR(simd_frac, 0.05, 0.02);
}

TEST(Generator, RealizedMixTracksSpec)
{
    WorkloadSpec w = tinySpec();
    w.schedule = {{0, 200'000}};
    WorkloadGenerator g(w);
    std::map<OpClass, InsnCount> mix;
    for (int i = 0; i < 200'000; ++i)
        ++mix[g.next().op()];
    double total = 200'000;
    EXPECT_NEAR(mix[OpClass::SimdOp] / total, 0.1, 0.03);
    EXPECT_NEAR((mix[OpClass::Load] + mix[OpClass::Store]) / total,
                0.30, 0.05);
}

TEST(Generator, PhaseFollowsSchedule)
{
    WorkloadGenerator g(tinySpec());
    EXPECT_EQ(g.currentPhase(), 0u);
    for (int i = 0; i < 60'000; ++i)
        g.next();
    EXPECT_EQ(g.currentPhase(), 1u);
    // Schedule loops.
    for (int i = 0; i < 45'000; ++i)
        g.next();
    EXPECT_EQ(g.currentPhase(), 0u);
}

TEST(Generator, TargetsAreBlockHeads)
{
    WorkloadGenerator g(tinySpec());
    const Program &prog = g.program();
    for (int i = 0; i < 20'000; ++i) {
        const DynInst &di = g.next();
        if (di.isTerminator) {
            ASSERT_NE(prog.findByHead(di.target), invalidBlockId);
        }
    }
}

TEST(Generator, BlockHeadFlagConsistent)
{
    WorkloadGenerator g(tinySpec());
    // First instruction is at a block head.
    EXPECT_TRUE(g.atBlockHead());
    bool expect_head = true;
    for (int i = 0; i < 20'000; ++i) {
        EXPECT_EQ(g.atBlockHead(), expect_head);
        const DynInst &di = g.next();
        expect_head = di.isTerminator;
    }
}

TEST(Generator, ColdBlocksExecuteOccasionally)
{
    WorkloadSpec w = tinySpec();
    w.phases[0].coldEscapeProb = 0.05;
    w.schedule = {{0, 100'000}};
    WorkloadGenerator g(w);
    const unsigned hot = w.phases[0].hotBlocks;
    bool saw_cold = false;
    for (int i = 0; i < 100'000; ++i) {
        g.next();
        if (g.currentBlock() >= hot &&
            g.currentBlock() < hot + w.phases[0].coldBlocks) {
            saw_cold = true;
            break;
        }
    }
    EXPECT_TRUE(saw_cold);
}

TEST(Generator, HotnessIsSkewedTowardFirstBlocks)
{
    WorkloadSpec w = tinySpec();
    w.schedule = {{0, 150'000}};
    WorkloadGenerator g(w);
    std::map<BlockId, int> counts;
    for (int i = 0; i < 150'000; ++i) {
        const DynInst &di = g.next();
        if (di.isTerminator)
            ++counts[g.currentBlock()];
    }
    // Block 0 is the hottest and clearly ahead of block 3.
    EXPECT_GT(counts[0], counts[1]);
    EXPECT_GT(counts[1], counts[3]);
}
