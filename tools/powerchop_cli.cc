/**
 * @file
 * powerchop — the command-line driver.
 *
 * Subcommands:
 *   list                         List the 29 built-in workload models.
 *   show <workload>              Print a model's spec (spec_io text
 *                                form, usable as a template).
 *   run <workload> [options]     Simulate one workload.
 *   compare <workload> [options] Full-power vs PowerChop vs min-power.
 *   trace <workload> [options]   Simulate and write a Chrome
 *                                trace-event JSON timeline (opens in
 *                                Perfetto / chrome://tracing).
 *   campaign <dir> [options]     Run a durable sweep into <dir>:
 *                                every finished job is journaled
 *                                (write-ahead, fsync'd) before it
 *                                counts, SIGINT/SIGTERM drain
 *                                gracefully, and --resume skips all
 *                                journaled work. Exit 0 = complete,
 *                                3 = interrupted (resumable),
 *                                1 = permanent failures.
 *                                --shards N forks N campaign-worker
 *                                processes supervised for crash
 *                                containment (restart with backoff,
 *                                straggler re-dispatch); the merged
 *                                report.json is byte-identical to a
 *                                single-process run.
 *   campaign-worker <dir> ...    Internal: one shard of a sharded
 *                                campaign. Reads assigned content
 *                                keys from stdin, journals to
 *                                --journal, reports done/heartbeat
 *                                lines on stdout.
 *   status <dir> [options]       Read a campaign's live statusboard
 *                                (<dir>/status/*.json): a one-shot
 *                                table by default, --follow to
 *                                redraw on an interval, --json for
 *                                machine output, --prom for a
 *                                Prometheus textfile exposition.
 *                                Exits 2 when <dir> holds no
 *                                snapshots (nothing running there).
 *   serve <dir> [options]        powerchopd: a long-lived daemon
 *                                serving simulation results over a
 *                                Unix/TCP socket from a content-
 *                                keyed LRU cache (misses simulate
 *                                through the campaign machinery;
 *                                the cache journal in <dir> makes
 *                                restarts warm).
 *   client [options]             One framed request against a
 *                                running powerchopd: --get KEY,
 *                                --stats, or matrix flags for a
 *                                SIM whose report is byte-identical
 *                                to a direct campaign's.
 *
 * Campaigns publish the statusboard and a crash flight recorder
 * (<dir>/flight.jsonl) by default; POWERCHOP_NO_STATUS=1 and
 * POWERCHOP_NO_FLIGHT=1 disable them. Both are write-only side
 * channels: report.json and the journals are byte-identical either
 * way.
 *
 * `<workload>` is either a built-in model name or a path to a spec
 * file (containing '/' or ending in .wl).
 *
 * Options:
 *   --machine server|mobile   Design point (default: by suite).
 *   --mode MODE               full-power | powerchop | min-power |
 *                             timeout-vpu | drowsy-mlc.
 *   --insns N                 Instruction budget (default 10000000).
 *   --timeout N               Timeout period in cycles (timeout-vpu).
 *   --save PATH               Write the workload spec to PATH.
 *   --trace PATH              Also write a trace (run/compare).
 *   --out PATH                Trace output path (trace; default
 *                             <workload>.trace.json).
 *   --metrics-out PATH        Write the per-window metrics CSV
 *                             (PowerChop mode; .jsonl writes JSONL).
 *
 * Unknown subcommands and options print usage and exit 2. --version
 * prints the release and exits 0.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <csignal>
#include <unistd.h>

#include "powerchop/powerchop.hh"
#include "workload/spec_io.hh"

#ifndef POWERCHOP_VERSION
#define POWERCHOP_VERSION "unknown"
#endif

using namespace powerchop;

namespace
{

int
usage()
{
    std::fprintf(
        stderr,
        "usage: powerchop <command> [args]\n"
        "  list\n"
        "  show <workload>\n"
        "  run <workload> [--machine server|mobile] [--mode MODE]\n"
        "      [--insns N] [--timeout N] [--save PATH] [--json]\n"
        "      [--trace PATH] [--metrics-out PATH]\n"
        "  compare <workload> [--machine server|mobile] [--insns N]\n"
        "  trace <workload> [--out PATH] [--mode MODE] [--insns N]\n"
        "  verify [--insns N] [--workloads a,b,c] [--machine M]\n"
        "      [--mode MODE] [--seeds s1,s2] [--goldens DIR]\n"
        "      [--update-goldens] [--tol T]\n"
        "  campaign <dir> [--workloads a,b,c] [--machine M]\n"
        "      [--modes m1,m2] [--insns N] [--resume] [--inspect]\n"
        "      [--timeout-seconds S] [--drain-seconds S]\n"
        "      [--retries N] [--shards N] [--max-restarts N]\n"
        "      [--heartbeat-seconds S] [--no-redispatch]\n"
        "  campaign-worker <dir> --journal PATH [matrix options]\n"
        "      (internal: one shard of `campaign --shards`; reads\n"
        "      assigned content keys from stdin, one 16-hex line\n"
        "      each, and reports done/heartbeat lines on stdout)\n"
        "  status <dir> [--json | --prom] [--follow] [--interval S]\n"
        "      (exit 2 when <dir> holds no status snapshots)\n"
        "  serve <dir> [--socket PATH | --port N] [--cache-mb N]\n"
        "      [--timeout-seconds S] [--max-conns N] [--sim-queue N]\n"
        "      [--backlog N] [--idle-timeout-seconds S]\n"
        "      [--read-timeout-seconds S] [--write-timeout-seconds S]\n"
        "      [--request-deadline-seconds S] [--drain-seconds S]\n"
        "      [--compact-ratio R] [--compact-min-records N]\n"
        "      (powerchopd: long-lived simulation service with a\n"
        "      content-keyed LRU result cache, journaled to\n"
        "      <dir>/cache.jsonl for warm restarts; default socket\n"
        "      <dir>/powerchopd.sock; overload sheds BUSY; SIGTERM\n"
        "      drains in-flight work and exits 3)\n"
        "  client (--socket PATH | --port N) [--get KEY | --stats |\n"
        "      matrix options] [--retries N] [--timeout-seconds S]\n"
        "      (one request against a running powerchopd; SIM\n"
        "      payloads are byte-identical to a direct campaign's\n"
        "      report.json; retries reconnect with deterministic\n"
        "      exponential backoff)\n"
        "  --version\n"
        "modes: full-power powerchop min-power timeout-vpu drowsy-mlc\n"
        "run/compare/trace accept --audit (invariant-check results)\n"
        "any subcommand accepts --profile (stage wall-clock table,\n"
        "same as POWERCHOP_PROFILE=1)\n");
    return 2;
}

/** Report a bad flag/subcommand: usage text on stderr, exit 2. */
class UsageError : public std::runtime_error
{
  public:
    explicit UsageError(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

WorkloadSpec
resolveWorkload(const std::string &arg)
{
    if (arg.find('/') != std::string::npos ||
        (arg.size() > 3 && arg.substr(arg.size() - 3) == ".wl")) {
        return loadWorkloadSpec(arg);
    }
    return findWorkload(arg);
}

SimMode
parseMode(const std::string &m)
{
    for (SimMode mode : {SimMode::FullPower, SimMode::PowerChop,
                         SimMode::MinPower, SimMode::TimeoutVpu,
                         SimMode::DrowsyMlc}) {
        if (m == simModeName(mode))
            return mode;
    }
    fatal("unknown mode '%s'", m.c_str());
}

struct Args
{
    std::string machine;
    SimMode mode = SimMode::PowerChop;
    bool modeSet = false;
    InsnCount insns = 10'000'000;
    bool insnsSet = false;
    double timeout = 0;
    std::string save;
    bool json = false;
    std::string tracePath;
    std::string metricsOut;
    std::string out;
    bool audit = false;

    /** verify-only options. @{ */
    std::string workloads;
    std::string seeds;
    std::string goldens;
    bool updateGoldens = false;
    double tol = 1e-6;
    /** @} */

    /** campaign-only options. @{ */
    std::string modes;
    bool resume = false;
    bool inspect = false;
    double timeoutSeconds = 0;
    double drainSeconds =
        envDouble("POWERCHOP_DRAIN_SECONDS", 0, 3600).value_or(5.0);
    unsigned retries = 0;
    /** @} */

    /** sharded-campaign / campaign-worker options. @{ */
    unsigned shards = 0; ///< 0 = in-process (unsharded) campaign.
    unsigned maxRestarts = 3;
    double heartbeatSeconds = 30.0;
    bool redispatch = true;
    std::string journal; ///< Shard journal (campaign-worker).
    /** @} */

    /** status-only options. @{ */
    bool follow = false;
    bool prom = false;
    double intervalSeconds = 2.0;
    /** @} */

    /** serve / client options. @{ */
    std::string socket;       ///< Unix-domain socket path.
    unsigned port = 0;        ///< TCP port on 127.0.0.1; 0 = Unix.
    double cacheMb = 256;     ///< Result-cache budget (MiB).
    std::string get;          ///< client: GET this hex content key.
    bool statsRequest = false; ///< client: STATS instead of SIM.
    unsigned maxConns = 256;  ///< serve: connection cap (0 = off).
    unsigned simQueue = 16;   ///< serve: SIM admission depth.
    int backlog = 64;         ///< serve: listen(2) backlog.
    double idleTimeoutSeconds = 300;   ///< serve: idle conn reap.
    double readTimeoutSeconds = 30;    ///< serve: mid-frame read.
    double writeTimeoutSeconds = 30;   ///< serve: response write.
    double requestDeadlineSeconds = 0; ///< serve: SIM wall cap.
    double compactRatio = 0.5; ///< serve: journal dead-ratio gate.
    std::uint64_t compactMinRecords = 1024; ///< serve: floor.
    /** @} */

    /** --profile: CLI parity for POWERCHOP_PROFILE=1. */
    bool profile = false;
};

Args
parseOptions(const std::vector<std::string> &rest)
{
    Args a;
    for (std::size_t i = 0; i < rest.size(); ++i) {
        auto need = [&](const char *what) -> const std::string & {
            if (i + 1 >= rest.size())
                fatal("%s requires a value", what);
            return rest[++i];
        };
        if (rest[i] == "--machine")
            a.machine = need("--machine");
        else if (rest[i] == "--mode") {
            a.mode = parseMode(need("--mode"));
            a.modeSet = true;
        } else if (rest[i] == "--insns") {
            a.insns = std::strtoull(need("--insns").c_str(), nullptr, 10);
            a.insnsSet = true;
        } else if (rest[i] == "--timeout")
            a.timeout = std::strtod(need("--timeout").c_str(), nullptr);
        else if (rest[i] == "--save")
            a.save = need("--save");
        else if (rest[i] == "--json")
            a.json = true;
        else if (rest[i] == "--trace")
            a.tracePath = need("--trace");
        else if (rest[i] == "--metrics-out")
            a.metricsOut = need("--metrics-out");
        else if (rest[i] == "--out")
            a.out = need("--out");
        else if (rest[i] == "--audit")
            a.audit = true;
        else if (rest[i] == "--workloads")
            a.workloads = need("--workloads");
        else if (rest[i] == "--seeds")
            a.seeds = need("--seeds");
        else if (rest[i] == "--goldens")
            a.goldens = need("--goldens");
        else if (rest[i] == "--update-goldens")
            a.updateGoldens = true;
        else if (rest[i] == "--tol")
            a.tol = std::strtod(need("--tol").c_str(), nullptr);
        else if (rest[i] == "--modes")
            a.modes = need("--modes");
        else if (rest[i] == "--resume")
            a.resume = true;
        else if (rest[i] == "--inspect")
            a.inspect = true;
        else if (rest[i] == "--timeout-seconds")
            a.timeoutSeconds =
                std::strtod(need("--timeout-seconds").c_str(), nullptr);
        else if (rest[i] == "--drain-seconds")
            a.drainSeconds =
                std::strtod(need("--drain-seconds").c_str(), nullptr);
        else if (rest[i] == "--retries")
            a.retries = static_cast<unsigned>(
                std::strtoul(need("--retries").c_str(), nullptr, 10));
        else if (rest[i] == "--shards")
            a.shards = static_cast<unsigned>(
                std::strtoul(need("--shards").c_str(), nullptr, 10));
        else if (rest[i] == "--max-restarts")
            a.maxRestarts = static_cast<unsigned>(std::strtoul(
                need("--max-restarts").c_str(), nullptr, 10));
        else if (rest[i] == "--heartbeat-seconds")
            a.heartbeatSeconds = std::strtod(
                need("--heartbeat-seconds").c_str(), nullptr);
        else if (rest[i] == "--no-redispatch")
            a.redispatch = false;
        else if (rest[i] == "--journal")
            a.journal = need("--journal");
        else if (rest[i] == "--follow")
            a.follow = true;
        else if (rest[i] == "--prom")
            a.prom = true;
        else if (rest[i] == "--interval")
            a.intervalSeconds =
                std::strtod(need("--interval").c_str(), nullptr);
        else if (rest[i] == "--socket")
            a.socket = need("--socket");
        else if (rest[i] == "--port")
            a.port = static_cast<unsigned>(
                std::strtoul(need("--port").c_str(), nullptr, 10));
        else if (rest[i] == "--cache-mb")
            a.cacheMb =
                std::strtod(need("--cache-mb").c_str(), nullptr);
        else if (rest[i] == "--get")
            a.get = need("--get");
        else if (rest[i] == "--stats")
            a.statsRequest = true;
        else if (rest[i] == "--max-conns")
            a.maxConns = static_cast<unsigned>(std::strtoul(
                need("--max-conns").c_str(), nullptr, 10));
        else if (rest[i] == "--sim-queue")
            a.simQueue = static_cast<unsigned>(std::strtoul(
                need("--sim-queue").c_str(), nullptr, 10));
        else if (rest[i] == "--backlog")
            a.backlog = static_cast<int>(std::strtol(
                need("--backlog").c_str(), nullptr, 10));
        else if (rest[i] == "--idle-timeout-seconds")
            a.idleTimeoutSeconds = std::strtod(
                need("--idle-timeout-seconds").c_str(), nullptr);
        else if (rest[i] == "--read-timeout-seconds")
            a.readTimeoutSeconds = std::strtod(
                need("--read-timeout-seconds").c_str(), nullptr);
        else if (rest[i] == "--write-timeout-seconds")
            a.writeTimeoutSeconds = std::strtod(
                need("--write-timeout-seconds").c_str(), nullptr);
        else if (rest[i] == "--request-deadline-seconds")
            a.requestDeadlineSeconds = std::strtod(
                need("--request-deadline-seconds").c_str(), nullptr);
        else if (rest[i] == "--compact-ratio")
            a.compactRatio = std::strtod(
                need("--compact-ratio").c_str(), nullptr);
        else if (rest[i] == "--compact-min-records")
            a.compactMinRecords = std::strtoull(
                need("--compact-min-records").c_str(), nullptr, 10);
        else if (rest[i] == "--profile")
            a.profile = true;
        else
            throw UsageError(csprintf("unknown option '%s'",
                                      rest[i].c_str()));
    }
    if (a.insns == 0)
        fatal("--insns must be positive");
    if (a.port > 65535)
        fatal("--port must be in [1, 65535]");
    if (a.cacheMb <= 0)
        fatal("--cache-mb must be positive");
    // --profile arms the process-wide profiler that POWERCHOP_PROFILE
    // latched at global()'s first use; doing it in the option funnel
    // covers every subcommand with one line.
    if (a.profile)
        telemetry::StageProfiler::global().setEnabled(true);
    return a;
}

/** Statusboard / flight recorder opt-outs: observability defaults on
 *  for campaigns and is disabled per run with POWERCHOP_NO_STATUS=1 /
 *  POWERCHOP_NO_FLIGHT=1 (both are write-only side channels, so the
 *  default costs nothing in report bytes). @{ */
bool
statusboardEnabled()
{
    return envUint64("POWERCHOP_NO_STATUS", 0, 1).value_or(0) == 0;
}

bool
flightRecorderEnabled()
{
    return envUint64("POWERCHOP_NO_FLIGHT", 0, 1).value_or(0) == 0;
}
/** @} */

/** Attach telemetry sinks requested by flags; returns the trace
 *  recorder when --trace / trace's --out asked for one. */
void
writeTelemetry(const Args &a, const std::string &trace_path,
               const telemetry::TraceRecorder &trace,
               const telemetry::MetricsRegistry &metrics)
{
    if (!trace_path.empty()) {
        if (!telemetry::writeChromeTrace(trace_path, {&trace}))
            fatal("cannot write trace to '%s'", trace_path.c_str());
        std::printf("wrote %s (%zu events%s)\n", trace_path.c_str(),
                    trace.events().size(),
                    trace.droppedEvents()
                        ? csprintf(", %llu dropped",
                                   static_cast<unsigned long long>(
                                       trace.droppedEvents()))
                              .c_str()
                        : "");
    }
    if (!a.metricsOut.empty()) {
        const bool jsonl =
            a.metricsOut.size() > 6 &&
            a.metricsOut.substr(a.metricsOut.size() - 6) == ".jsonl";
        const bool ok = jsonl ? metrics.writeJsonl(a.metricsOut)
                              : metrics.writeCsv(a.metricsOut);
        if (!ok)
            fatal("cannot write metrics to '%s'",
                  a.metricsOut.c_str());
        std::printf("wrote %s (%zu windows)\n", a.metricsOut.c_str(),
                    metrics.rows().size());
    }
}

MachineConfig
resolveMachine(const Args &a, const WorkloadSpec &w)
{
    if (a.machine == "server")
        return serverConfig();
    if (a.machine == "mobile")
        return mobileConfig();
    if (!a.machine.empty())
        fatal("unknown machine '%s'", a.machine.c_str());
    return w.suite == Suite::MobileBench ? mobileConfig()
                                         : serverConfig();
}

void
printResult(const SimResult &r)
{
    std::printf("%s on %s [%s]\n", r.workload.c_str(),
                r.machine.c_str(), simModeName(r.mode));
    std::printf("  instructions  %llu\n",
                static_cast<unsigned long long>(r.instructions));
    std::printf("  cycles        %.0f\n", static_cast<double>(r.cycles));
    std::printf("  IPC           %.3f\n", r.ipc());
    std::printf("  avg power     %.3f W (leakage %.3f W)\n",
                r.energy.averagePower(),
                r.energy.averageLeakagePower());
    std::printf("  energy        %.4g J\n", r.energy.totalEnergy());
    std::printf("  gated: VPU %s  BPU %s  MLC half %s / quarter %s / "
                "1-way %s\n",
                pct(r.vpuGatedFraction).c_str(),
                pct(r.bpuGatedFraction).c_str(),
                pct(r.mlcHalfFraction).c_str(),
                pct(r.mlcQuarterFraction).c_str(),
                pct(r.mlcOneWayFraction).c_str());
    if (r.mode == SimMode::PowerChop) {
        std::printf("  PVT: %llu lookups, %llu hits (%.4f%% misses "
                    "per translation)\n",
                    static_cast<unsigned long long>(r.pvtLookups),
                    static_cast<unsigned long long>(r.pvtHits),
                    100 * r.pvtMissPerTranslation);
    }
    if (r.mode == SimMode::DrowsyMlc) {
        std::printf("  drowsy: avg %.1f%% of lines drowsy, %llu "
                    "wakeups\n",
                    100 * r.mlcDrowsyFraction,
                    static_cast<unsigned long long>(r.drowsyWakes));
    }
}

int
cmdList()
{
    std::printf("%-15s %-12s %7s %9s\n", "name", "suite", "phases",
                "schedule");
    for (const auto &w : allWorkloads()) {
        std::printf("%-15s %-12s %7zu %8lluK\n", w.name.c_str(),
                    suiteName(w.suite), w.phases.size(),
                    static_cast<unsigned long long>(
                        w.scheduleLength() / 1000));
    }
    return 0;
}

int
cmdShow(const std::string &name)
{
    std::fputs(formatWorkloadSpec(resolveWorkload(name)).c_str(),
               stdout);
    return 0;
}

int
cmdRun(const std::string &name, const Args &a)
{
    WorkloadSpec w = resolveWorkload(name);
    if (!a.save.empty()) {
        saveWorkloadSpec(w, a.save);
        std::printf("wrote %s\n", a.save.c_str());
    }
    MachineConfig m = resolveMachine(a, w);
    SimOptions opts;
    opts.mode = a.mode;
    opts.maxInstructions = a.insns;
    opts.timeoutCycles = a.timeout;
    opts.audit = a.audit;

    telemetry::TraceRecorder trace;
    telemetry::MetricsRegistry metrics;
    if (!a.tracePath.empty())
        opts.trace = &trace;
    if (!a.metricsOut.empty()) {
        if (a.mode != SimMode::PowerChop)
            fatal("--metrics-out requires --mode powerchop");
        opts.metrics = &metrics;
    }

    SimResult r = simulate(m, w, opts);
    if (a.json)
        std::printf("%s\n", r.toJson().c_str());
    else
        printResult(r);
    writeTelemetry(a, a.tracePath, trace, metrics);
    return 0;
}

int
cmdTrace(const std::string &name, const Args &a)
{
    WorkloadSpec w = resolveWorkload(name);
    MachineConfig m = resolveMachine(a, w);
    SimOptions opts;
    opts.mode = a.mode;
    opts.maxInstructions = a.insns;
    opts.timeoutCycles = a.timeout;
    opts.audit = a.audit;

    telemetry::TraceRecorder trace;
    telemetry::MetricsRegistry metrics;
    opts.trace = &trace;
    if (!a.metricsOut.empty() && a.mode == SimMode::PowerChop)
        opts.metrics = &metrics;

    SimResult r = simulate(m, w, opts);
    printResult(r);

    const std::string path =
        !a.out.empty() ? a.out : w.name + ".trace.json";
    writeTelemetry(a, path, trace, metrics);
    return 0;
}

int
cmdCompare(const std::string &name, const Args &a)
{
    WorkloadSpec w = resolveWorkload(name);
    MachineConfig m = resolveMachine(a, w);
    ComparisonRuns runs = runComparison(m, w, a.insns);
    if (a.audit) {
        verify::InvariantAuditor auditor;
        for (const SimResult *r :
             {&runs.fullPower, &runs.powerChop, &runs.minPower}) {
            verify::AuditReport rep = auditor.audit(*r, m);
            if (!rep.ok())
                fatal("audit of %s run failed: %s",
                      simModeName(r->mode), rep.toString().c_str());
        }
    }
    printResult(runs.fullPower);
    std::printf("\n");
    printResult(runs.powerChop);
    std::printf("\n");
    printResult(runs.minPower);
    std::printf("\nPowerChop vs full power: slowdown %s, power %s, "
                "energy %s, leakage %s\n",
                pct(runs.powerChop.slowdownVs(runs.fullPower)).c_str(),
                pct(runs.powerChop.powerReductionVs(runs.fullPower))
                    .c_str(),
                pct(runs.powerChop.energyReductionVs(runs.fullPower))
                    .c_str(),
                pct(runs.powerChop.leakageReductionVs(runs.fullPower))
                    .c_str());
    return 0;
}

std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= csv.size()) {
        std::size_t comma = csv.find(',', start);
        if (comma == std::string::npos)
            comma = csv.size();
        if (comma > start)
            out.push_back(csv.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

int
cmdVerify(const Args &a)
{
    // verify's default budget favours CI latency over figure quality:
    // 200k instructions crosses many HTB windows and phase changes on
    // every built-in model but keeps the full matrix in seconds.
    const InsnCount insns = a.insnsSet ? a.insns : 200'000;

    verify::DifferentialMatrix matrix;
    matrix.insns = insns;
    if (!a.workloads.empty())
        matrix.workloads = splitList(a.workloads);
    if (!a.machine.empty())
        matrix.machines = {a.machine};
    if (a.modeSet)
        matrix.modes = {a.mode};
    if (!a.seeds.empty()) {
        for (const auto &s : splitList(a.seeds))
            matrix.faultSeeds.push_back(
                std::strtoull(s.c_str(), nullptr, 10));
    } else {
        // Fault-free plus one faulty seed: the differential contract
        // holds under injected faults too (both loops share the
        // deterministic per-run fault stream).
        matrix.faultSeeds = {0, 1009};
    }

    std::printf("differential: optimized simulate() vs reference "
                "oracle, %llu insns/case\n",
                static_cast<unsigned long long>(insns));
    verify::DifferentialReport report = verify::runDifferentialMatrix(
        matrix, [](const verify::DifferentialCase &c) {
            std::printf("  %s\n", c.toString().c_str());
            std::fflush(stdout);
        });
    std::printf("differential: %s\n", report.toString().c_str());

    bool golden_ok = true;
    if (!a.goldens.empty()) {
        // Goldens pin fault-free runs only; fault seeds exercise the
        // differential contract, not the snapshot store.
        std::vector<std::string> workloads = !matrix.workloads.empty()
            ? matrix.workloads
            : std::vector<std::string>{"perlbench", "namd", "canneal",
                                       "msn"};
        std::vector<std::string> machines = !matrix.machines.empty()
            ? matrix.machines
            : std::vector<std::string>{"server", "mobile"};
        std::vector<SimMode> modes = !matrix.modes.empty()
            ? matrix.modes
            : std::vector<SimMode>{SimMode::FullPower, SimMode::PowerChop,
                                   SimMode::MinPower, SimMode::TimeoutVpu,
                                   SimMode::DrowsyMlc};
        std::size_t updated = 0, checked = 0;
        for (const auto &wname : workloads) {
            for (const auto &mname : machines) {
                for (SimMode mode : modes) {
                    WorkloadSpec w = findWorkload(wname);
                    MachineConfig m = mname == "server"
                        ? serverConfig() : mobileConfig();
                    SimOptions opts;
                    opts.mode = mode;
                    opts.maxInstructions = insns;
                    opts.audit = true;
                    SimResult r = simulate(m, w, opts);
                    const std::string path = a.goldens + "/" +
                        verify::goldenFileName(wname, mname,
                                               simModeName(mode));
                    if (a.updateGoldens) {
                        verify::saveGolden(path, r.toJson());
                        ++updated;
                        continue;
                    }
                    verify::FlatJson golden;
                    if (!verify::loadGolden(path, golden)) {
                        std::printf("golden MISSING: %s (run with "
                                    "--update-goldens)\n",
                                    path.c_str());
                        golden_ok = false;
                        continue;
                    }
                    verify::GoldenDiff diff = verify::diffGolden(
                        golden,
                        verify::parseFlatJson(r.toJson(), "candidate"),
                        a.tol);
                    ++checked;
                    if (!diff.ok()) {
                        std::printf("golden FAIL: %s: %s\n",
                                    path.c_str(),
                                    diff.toString().c_str());
                        golden_ok = false;
                    }
                }
            }
        }
        if (a.updateGoldens)
            std::printf("goldens: wrote %zu files to %s\n", updated,
                        a.goldens.c_str());
        else
            std::printf("goldens: %zu checked, %s\n", checked,
                        golden_ok ? "all ok" : "FAILURES");
    }

    return (report.ok() && golden_ok) ? 0 : 1;
}

/** The campaign matrix named by the CLI options, in canonical
 *  (workload-major) order. Shared by the in-process campaign, the
 *  shard supervisor and the campaign-worker subcommand: all three
 *  must derive identical job lists (and so identical content keys)
 *  from the same flags. */
std::vector<SimJob>
buildCampaignJobs(const Args &a)
{
    const std::vector<std::string> workloads = !a.workloads.empty()
        ? splitList(a.workloads)
        : std::vector<std::string>{"perlbench", "namd", "canneal",
                                   "msn"};
    const std::vector<std::string> machines = !a.machine.empty()
        ? std::vector<std::string>{a.machine}
        : std::vector<std::string>{"server", "mobile"};
    std::vector<SimMode> modes;
    if (!a.modes.empty()) {
        for (const auto &m : splitList(a.modes))
            modes.push_back(parseMode(m));
    } else if (a.modeSet) {
        modes = {a.mode};
    } else {
        modes = {SimMode::FullPower, SimMode::PowerChop,
                 SimMode::MinPower, SimMode::TimeoutVpu,
                 SimMode::DrowsyMlc};
    }
    const InsnCount insns = a.insnsSet ? a.insns : 200'000;

    std::vector<SimJob> jobs;
    for (const auto &wname : workloads) {
        for (const auto &mname : machines) {
            for (SimMode mode : modes) {
                SimJob job;
                job.workload = resolveWorkload(wname);
                job.machine = mname == "server" ? serverConfig()
                                                : mobileConfig();
                job.opts.mode = mode;
                job.opts.maxInstructions = insns;
                job.opts.timeoutCycles = a.timeout;
                jobs.push_back(std::move(job));
            }
        }
    }
    return jobs;
}

/** The matrix-defining flags to forward to campaign-worker
 *  processes, so they rebuild exactly the supervisor's job list. */
std::vector<std::string>
matrixWorkerArgs(const Args &a)
{
    std::vector<std::string> args;
    if (!a.workloads.empty()) {
        args.push_back("--workloads");
        args.push_back(a.workloads);
    }
    if (!a.machine.empty()) {
        args.push_back("--machine");
        args.push_back(a.machine);
    }
    if (!a.modes.empty()) {
        args.push_back("--modes");
        args.push_back(a.modes);
    } else if (a.modeSet) {
        args.push_back("--mode");
        args.push_back(simModeName(a.mode));
    }
    if (a.insnsSet) {
        args.push_back("--insns");
        args.push_back(csprintf(
            "%llu", static_cast<unsigned long long>(a.insns)));
    }
    if (a.timeout != 0) {
        args.push_back("--timeout");
        args.push_back(csprintf("%.17g", a.timeout));
    }
    if (a.drainSeconds != 5.0) {
        args.push_back("--drain-seconds");
        args.push_back(csprintf("%.17g", a.drainSeconds));
    }
    // Not matrix-defining, but per-process: workers must arm their
    // own profiler to contribute stage tables to the statusboard.
    if (a.profile)
        args.push_back("--profile");
    return args;
}

int
cmdStatus(const std::string &dir, const Args &a)
{
    if (a.json && a.prom)
        fatal("status: --json and --prom are mutually exclusive");
    for (;;) {
        const std::vector<StatusEntry> entries = readStatusDir(dir);
        if (entries.empty()) {
            // Scripts must be able to tell "no campaign here" from
            // "campaign finished": an empty/missing status directory
            // is a usage-style error, not an empty success.
            std::fprintf(
                stderr,
                "status: no status snapshots under %s/status "
                "(no campaign or powerchopd started here, or "
                "observability disabled with "
                "POWERCHOP_NO_STATUS=1)\n",
                dir.c_str());
            return 2;
        }
        std::string out;
        if (a.json)
            out = renderStatusJson(dir, entries);
        else if (a.prom)
            out = renderStatusPrometheus(entries);
        else
            out = renderStatusTable(entries);
        std::fputs(out.c_str(), stdout);
        std::fflush(stdout);
        if (!a.follow)
            return 0;
        // --follow: redraw until interrupted (default SIGINT ends
        // the loop by terminating the process, which is fine — the
        // statusboard is read-only).
        std::this_thread::sleep_for(
            std::chrono::duration<double>(
                a.intervalSeconds > 0 ? a.intervalSeconds : 2.0));
        std::printf("\n");
    }
}

int
cmdServe(const std::string &dir, const Args &a)
{
    makeCampaignDirs(dir);
    installCampaignSignalHandlers();

    ServeOptions sopts;
    if (a.port != 0)
        sopts.port = static_cast<unsigned short>(a.port);
    else
        sopts.socketPath =
            !a.socket.empty() ? a.socket : dir + "/powerchopd.sock";
    sopts.cache.maxBytes =
        static_cast<std::size_t>(a.cacheMb * (1u << 20));
    sopts.cache.journalPath = dir + "/cache.jsonl";
    sopts.cache.compactDeadRatio = a.compactRatio;
    sopts.cache.compactMinRecords = a.compactMinRecords;
    sopts.jobTimeoutSeconds = a.timeoutSeconds;
    sopts.listenBacklog = a.backlog;
    sopts.maxConnections = a.maxConns;
    sopts.simQueueDepth = a.simQueue;
    sopts.idleTimeoutSeconds = a.idleTimeoutSeconds;
    sopts.readTimeoutSeconds = a.readTimeoutSeconds;
    sopts.writeTimeoutSeconds = a.writeTimeoutSeconds;
    sopts.requestDeadlineSeconds = a.requestDeadlineSeconds;
    sopts.drainSeconds = a.drainSeconds;
    sopts.stopFlag = &campaignInterruptFlag();
    if (statusboardEnabled()) {
        makeCampaignDirs(statusDirPath(dir));
        sopts.statusPath = statusDirPath(dir) + "/server.json";
    }
    if (flightRecorderEnabled())
        FlightRecorder::global().enable(dir + "/flight.jsonl");
    sopts.onEvent = [](const std::string &msg) {
        inform("[powerchopd] %s", msg.c_str());
    };

    SimServer server(sopts);
    const ServeReport rep = server.run();
    std::printf("powerchopd: %s\n", rep.summary().c_str());
    // A drained daemon exits like an interrupted campaign: 3 tells
    // a supervisor "clean but signal-initiated" (a second signal
    // hard-exits 128+sig from the handler itself).
    return campaignInterruptFlag().load() ? campaignInterruptedExitStatus
                                          : 0;
}

int
cmdClient(const Args &a)
{
    if (a.socket.empty() && a.port == 0)
        fatal("client requires --socket PATH or --port N");
    if (!a.get.empty() && a.statsRequest)
        fatal("client: --get and --stats are mutually exclusive");

    ServeClient client;
    ClientRetryPolicy policy;
    policy.retries = a.retries;
    policy.timeoutSeconds = a.timeoutSeconds;
    client.setRetryPolicy(policy);
    std::string err;
    bool connected = a.port != 0
        ? client.connectTcp(static_cast<unsigned short>(a.port),
                            &err)
        : client.connectUnix(a.socket, &err);
    // A failed dial is retryable too (the daemon may be mid-
    // restart): request() redials with backoff, so only give up
    // now when no retries were asked for.
    if (!connected && a.retries == 0)
        fatal("client: %s", err.c_str());

    ServeReply reply;
    if (a.statsRequest) {
        reply = client.stats();
    } else if (!a.get.empty()) {
        char *end = nullptr;
        const std::uint64_t key =
            std::strtoull(a.get.c_str(), &end, 16);
        if (a.get.empty() || !end || *end != '\0')
            fatal("client: --get wants a hex content key");
        reply = client.get(key);
    } else {
        // Matrix flags become a SIM spec with the same defaults as
        // `powerchop campaign`, so the served report matches a
        // direct run of the identical command line byte-for-byte.
        const std::vector<std::string> workloads =
            !a.workloads.empty()
                ? splitList(a.workloads)
                : std::vector<std::string>{"perlbench", "namd",
                                           "canneal", "msn"};
        const std::vector<std::string> machines = !a.machine.empty()
            ? std::vector<std::string>{a.machine}
            : std::vector<std::string>{"server", "mobile"};
        std::vector<std::string> modes;
        if (!a.modes.empty()) {
            modes = splitList(a.modes);
        } else if (a.modeSet) {
            modes = {simModeName(a.mode)};
        } else {
            modes = {"full-power", "powerchop", "min-power",
                     "timeout-vpu", "drowsy-mlc"};
        }
        const InsnCount insns = a.insnsSet ? a.insns : 200'000;
        reply = client.sim(formatSimSpec(workloads, machines, modes,
                                         insns, a.timeout));
    }

    if (reply.ioFailed) {
        fatal("client: %s",
              !reply.error.empty() ? reply.error.c_str()
                                   : "request failed (daemon gone?)");
    }
    if (reply.status == ResponseStatus::Err) {
        std::fprintf(stderr, "ERR: %s", reply.payload.c_str());
        return 1;
    }
    if (reply.status == ResponseStatus::Busy) {
        std::fprintf(stderr, "BUSY: %s", reply.payload.c_str());
        return 1;
    }
    if (reply.status == ResponseStatus::Miss) {
        std::fprintf(stderr, "MISS\n");
        return 1;
    }
    // HIT/OK: the payload verbatim — byte-identity is the contract,
    // so nothing is added but a final newline when the payload
    // itself lacks one (GET payloads are single-line JSON).
    std::fwrite(reply.payload.data(), 1, reply.payload.size(),
                stdout);
    if (!reply.payload.empty() && reply.payload.back() != '\n')
        std::printf("\n");
    return 0;
}

int
cmdShardedCampaign(const std::string &dir, const Args &a)
{
    installCampaignSignalHandlers();

    ShardSupervisorOptions sopts;
    sopts.shards = a.shards;
    sopts.resume = a.resume;
    sopts.maxRestarts = a.maxRestarts;
    sopts.heartbeatTimeoutSeconds = a.heartbeatSeconds;
    sopts.drainSeconds = a.drainSeconds;
    sopts.redispatch = a.redispatch;
    sopts.jobTimeoutSeconds = a.timeoutSeconds;
    sopts.maxRetries = a.retries;
    sopts.workerArgs = matrixWorkerArgs(a);
    sopts.publishStatus = statusboardEnabled();
    if (flightRecorderEnabled())
        FlightRecorder::global().enable(dir + "/flight.jsonl");
    sopts.onEvent = [](const std::string &msg) {
        // Supervision events (spawn/crash/restart/redispatch) are the
        // campaign's operational log; the limiter caps a crash-
        // restart storm while the generous burst keeps every event of
        // a normal run printed.
        static LogRateLimiter limiter(20.0, 60.0);
        informLimited(limiter, "[supervisor] %s", msg.c_str());
    };

    const ShardSupervisorResult res =
        runShardedCampaign(buildCampaignJobs(a), dir, sopts);

    std::printf("campaign: %s\n", res.campaign.summary().c_str());
    std::printf("report: %s/report.json\n", dir.c_str());

    // The supervision trajectory rides the same BENCH file the
    // runner benches append to, so crash/restart counts are tracked
    // across changes alongside throughput.
    RunnerReport rep;
    rep.jobs = res.campaign.keys.size();
    rep.threads = static_cast<unsigned>(res.shards);
    rep.wallSeconds = res.wallSeconds;
    rep.okJobs = res.campaign.keys.size();
    for (const auto &o : res.campaign.outcomes)
        rep.okJobs -= o.status != JobStatus::Ok;
    rep.failedJobs = 0;
    for (const auto &o : res.campaign.outcomes)
        rep.failedJobs += o.status == JobStatus::Failed;
    rep.workerCrashes = res.crashes;
    rep.workerRestarts = res.restarts;
    rep.redispatches = res.redispatches;
    const std::string bench_path =
        envString("POWERCHOP_RUNNER_JSON")
            .value_or("BENCH_runner.json");
    appendJsonArrayEntryOk(bench_path,
                           rep.toJson("campaign-shards"));

    if (res.campaign.interrupted)
        return campaignInterruptedExitStatus;
    return res.campaign.complete() ? 0 : 1;
}

int
cmdCampaignWorker(const std::string &dir, const Args &a)
{
    if (a.journal.empty())
        fatal("campaign-worker requires --journal PATH");

    // Assignment: one 16-hex content key per stdin line, EOF ends it.
    std::vector<std::uint64_t> assigned;
    {
        std::string line;
        char buf[64];
        while (std::fgets(buf, sizeof(buf), stdin)) {
            line = buf;
            while (!line.empty() &&
                   (line.back() == '\n' || line.back() == '\r')) {
                line.pop_back();
            }
            if (line.empty())
                continue;
            assigned.push_back(
                std::strtoull(line.c_str(), nullptr, 16));
        }
    }

    // Rebuild the matrix from the forwarded flags and keep only the
    // assigned keys. An assigned key the matrix cannot produce means
    // supervisor and worker disagree about the spec — fatal, because
    // silently dropping it would stall the campaign.
    const std::vector<SimJob> matrix = buildCampaignJobs(a);
    std::vector<std::uint64_t> matrix_keys;
    matrix_keys.reserve(matrix.size());
    for (const auto &job : matrix)
        matrix_keys.push_back(campaignJobKey(job));

    std::vector<SimJob> jobs;
    for (std::uint64_t key : assigned) {
        bool found = false;
        for (std::size_t i = 0; i < matrix.size(); ++i) {
            if (matrix_keys[i] == key) {
                jobs.push_back(matrix[i]);
                found = true;
                break;
            }
        }
        if (!found) {
            fatal("campaign-worker: assigned key %016llx matches no "
                  "job of this matrix (flag mismatch with the "
                  "supervisor?)",
                  static_cast<unsigned long long>(key));
        }
    }

    installCampaignSignalHandlers();

    // The worker's statusboard identity is its journal basename
    // ("shard-0000", "shard-0000-h1"): unique per worker process in
    // the campaign dir, stable across restarts of the same shard.
    std::string label = a.journal;
    const std::size_t slash = label.find_last_of('/');
    if (slash != std::string::npos)
        label = label.substr(slash + 1);
    if (label.size() > 6 &&
        label.substr(label.size() - 6) == ".jsonl") {
        label = label.substr(0, label.size() - 6);
    }

    std::unique_ptr<StatusPublisher> publisher;
    if (statusboardEnabled()) {
        makeCampaignDirs(statusDirPath(dir));
        publisher = std::make_unique<StatusPublisher>(
            statusDirPath(dir) + "/" + label + ".json");
    }
    if (flightRecorderEnabled()) {
        FlightRecorder::global().enable(dir + "/flight-" + label +
                                        ".jsonl");
    }

    std::atomic<std::size_t> done_jobs{0}, ok_jobs{0},
        failed_jobs{0}, retried_jobs{0};
    std::mutex inflight_mutex;
    std::vector<std::uint64_t> inflight;
    stats::Log2Histogram fsync_latency_ns;
    SimJobRunner runner;
    const double obs_start = monotonicSeconds();
    const InsnCount obs_tally_start = simulatedInstructionTally();
    const std::size_t total_jobs = jobs.size();
    const auto makeSnapshot = [&](bool finished) {
        StatusSnapshot snap;
        snap.role = "shard-worker";
        snap.label = label;
        snap.jobsTotal = total_jobs;
        snap.jobsDone = done_jobs.load(std::memory_order_relaxed);
        snap.jobsOk = ok_jobs.load(std::memory_order_relaxed);
        snap.jobsFailed =
            failed_jobs.load(std::memory_order_relaxed);
        snap.jobsRetried =
            retried_jobs.load(std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> lock(inflight_mutex);
            snap.inFlight = inflight;
        }
        const double elapsed = monotonicSeconds() - obs_start;
        if (elapsed > 0) {
            snap.mips = static_cast<double>(
                            simulatedInstructionTally() -
                            obs_tally_start) /
                        elapsed / 1e6;
        }
        snap.jobLatencyMs =
            runner.report().taskLatencyNs.quantiles(1e-6);
        snap.fsyncLatencyMs = fsync_latency_ns.quantiles(1e-6);
        if (telemetry::StageProfiler::global().enabled())
            snap.stages = telemetry::StageProfiler::global().snapshot();
        snap.finished = finished;
        return snap;
    };

    // Protocol stdout (ready/hb/done lines) is shared between worker
    // threads and the heartbeat thread.
    std::mutex out_mutex;
    const auto emit = [&](const std::string &line) {
        std::lock_guard<std::mutex> lock(out_mutex);
        std::fputs((line + "\n").c_str(), stdout);
        std::fflush(stdout);
    };
    emit(csprintf("ready %zu", jobs.size()));

    std::atomic<bool> hb_stop{false};
    std::thread heartbeat([&] {
        // ~500ms cadence keeps hang detection cheap and prompt; the
        // 100ms slices keep worker exit snappy. The statusboard rides
        // the same ticks (its publisher gates itself to the cadence
        // floor), so MIPS and heartbeat age stay fresh even while a
        // long job is in flight.
        int tick = 0;
        while (!hb_stop.load(std::memory_order_relaxed)) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
            if (publisher)
                publisher->publish(makeSnapshot(false));
            if (++tick >= 5) {
                tick = 0;
                emit("hb");
            }
        }
    });

    // Crash injection for the containment tests: kill this process
    // at the worst possible point — after the assigned job's work,
    // immediately before its record becomes durable — exactly once
    // (a marker file survives the crash and disarms the injection in
    // the restarted worker).
    const std::uint64_t crash_key =
        std::strtoull(envString("POWERCHOP_TEST_CRASH_KEY")
                          .value_or("0")
                          .c_str(),
                      nullptr, 16);
    const std::string crash_mode =
        envString("POWERCHOP_TEST_CRASH_MODE").value_or("segv");

    ShardRunOptions sopts;
    sopts.timeoutSeconds = a.timeoutSeconds;
    sopts.maxRetries = a.retries;
    sopts.drainSeconds = a.drainSeconds;
    sopts.preJournal = [&](std::uint64_t key, const JobOutcome &) {
        if (crash_key == 0 || key != crash_key)
            return;
        const std::string marker = csprintf(
            "%s/.crash-fired-%016llx", dir.c_str(),
            static_cast<unsigned long long>(crash_key));
        if (::access(marker.c_str(), F_OK) == 0)
            return;
        atomicWriteFile(marker, "armed-once\n");
        if (crash_mode == "kill") {
            ::kill(::getpid(), SIGKILL);
        } else if (crash_mode == "abort") {
            std::abort();
        } else {
            ::raise(SIGSEGV);
        }
    };
    sopts.onJobStart = [&](std::uint64_t key) {
        {
            std::lock_guard<std::mutex> lock(inflight_mutex);
            inflight.push_back(key);
        }
        if (publisher)
            publisher->publish(makeSnapshot(false));
    };
    sopts.onJobDone = [&](std::uint64_t key, const JobOutcome &o,
                          bool) {
        done_jobs.fetch_add(1, std::memory_order_relaxed);
        if (o.status == JobStatus::Ok)
            ok_jobs.fetch_add(1, std::memory_order_relaxed);
        else
            failed_jobs.fetch_add(1, std::memory_order_relaxed);
        if (o.attempts > 1) {
            retried_jobs.fetch_add(o.attempts - 1,
                                   std::memory_order_relaxed);
        }
        {
            std::lock_guard<std::mutex> lock(inflight_mutex);
            for (auto it = inflight.begin(); it != inflight.end();
                 ++it) {
                if (*it == key) {
                    inflight.erase(it);
                    break;
                }
            }
        }
        if (publisher)
            publisher->publish(makeSnapshot(false));
        emit(csprintf("done %016llx %s",
                      static_cast<unsigned long long>(key),
                      jobStatusName(o.status)));
    };
    if (publisher)
        sopts.fsyncLatencyNs = &fsync_latency_ns;

    const ShardRunResult res =
        runCampaignShard(runner, jobs, a.journal, sopts);

    hb_stop.store(true, std::memory_order_relaxed);
    heartbeat.join();
    if (publisher)
        publisher->publish(makeSnapshot(true), true);

    if (res.interrupted)
        return campaignInterruptedExitStatus;
    return res.complete ? 0 : 1;
}

int
cmdCampaign(const std::string &dir, const Args &a)
{
    if (a.inspect) {
        // Summarize the journal without dispatching anything.
        const JournalReplay replay = loadJournal(dir + "/journal.jsonl");
        std::printf("journal: %zu lines, %zu live records "
                    "(%zu corrupt, %zu torn, %zu superseded)\n",
                    replay.lines, replay.records.size(),
                    replay.corrupted, replay.truncated,
                    replay.duplicates);
        for (const auto &rec : replay.records) {
            std::printf("  %016llx %s\n",
                        static_cast<unsigned long long>(rec.key),
                        rec.status.c_str());
        }
        return 0;
    }

    // --shards hands the whole campaign to the process supervisor:
    // same matrix, same directory, same report bytes.
    if (a.shards > 0)
        return cmdShardedCampaign(dir, a);

    // The matrix, in canonical order (workload-major): the same
    // defaults as verify's golden sweep.
    const std::vector<SimJob> jobs = buildCampaignJobs(a);

    installCampaignSignalHandlers();
    SimJobRunner runner;
    CampaignOptions copts;
    copts.resume = a.resume;
    copts.timeoutSeconds = a.timeoutSeconds;
    copts.maxRetries = a.retries;
    copts.drainSeconds = a.drainSeconds;
    copts.publishStatus = statusboardEnabled();
    if (flightRecorderEnabled())
        FlightRecorder::global().enable(dir + "/flight.jsonl");
    copts.onProgress = [](std::size_t done, std::size_t total) {
        // Generous budget: a wide matrix emits at most a few hundred
        // lines, and only a pathological retry storm gets throttled.
        static LogRateLimiter limiter(50.0, 200.0);
        informLimited(limiter, "[campaign %zu/%zu]", done, total);
    };

    const CampaignResult res = runCampaign(runner, jobs, dir, copts);
    std::printf("campaign: %s\n", res.summary().c_str());
    std::printf("report: %s/report.json\n", dir.c_str());
    if (res.interrupted)
        return campaignInterruptedExitStatus;
    return res.complete() ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();

    std::vector<std::string> rest;
    for (int i = 3; i < argc; ++i)
        rest.emplace_back(argv[i]);

    try {
        std::string cmd = argv[1];
        if (cmd == "--version" || cmd == "version") {
            std::printf("powerchop %s\n", POWERCHOP_VERSION);
            return 0;
        }
        if (cmd == "list" && argc == 2)
            return cmdList();
        if (cmd == "show" && argc == 3)
            return cmdShow(argv[2]);
        if (cmd == "run" && argc >= 3)
            return cmdRun(argv[2], parseOptions(rest));
        if (cmd == "compare" && argc >= 3)
            return cmdCompare(argv[2], parseOptions(rest));
        if (cmd == "trace" && argc >= 3)
            return cmdTrace(argv[2], parseOptions(rest));
        if (cmd == "campaign" && argc >= 3)
            return cmdCampaign(argv[2], parseOptions(rest));
        if (cmd == "campaign-worker" && argc >= 3)
            return cmdCampaignWorker(argv[2], parseOptions(rest));
        if (cmd == "status" && argc >= 3)
            return cmdStatus(argv[2], parseOptions(rest));
        if (cmd == "serve" && argc >= 3)
            return cmdServe(argv[2], parseOptions(rest));
        if (cmd == "client") {
            // client has no positional: every argv after the
            // subcommand is an option (the daemon address flags).
            std::vector<std::string> crest;
            for (int i = 2; i < argc; ++i)
                crest.emplace_back(argv[i]);
            return cmdClient(parseOptions(crest));
        }
        if (cmd == "verify") {
            // verify has no <workload> positional: every argv after
            // the subcommand is an option.
            std::vector<std::string> vrest;
            for (int i = 2; i < argc; ++i)
                vrest.emplace_back(argv[i]);
            return cmdVerify(parseOptions(vrest));
        }
    } catch (const UsageError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return usage();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
    // Unknown subcommand (or malformed arity): usage, exit 2.
    return usage();
}
