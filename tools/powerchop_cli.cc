/**
 * @file
 * powerchop — the command-line driver.
 *
 * Subcommands:
 *   list                         List the 29 built-in workload models.
 *   show <workload>              Print a model's spec (spec_io text
 *                                form, usable as a template).
 *   run <workload> [options]     Simulate one workload.
 *   compare <workload> [options] Full-power vs PowerChop vs min-power.
 *   trace <workload> [options]   Simulate and write a Chrome
 *                                trace-event JSON timeline (opens in
 *                                Perfetto / chrome://tracing).
 *
 * `<workload>` is either a built-in model name or a path to a spec
 * file (containing '/' or ending in .wl).
 *
 * Options:
 *   --machine server|mobile   Design point (default: by suite).
 *   --mode MODE               full-power | powerchop | min-power |
 *                             timeout-vpu | drowsy-mlc.
 *   --insns N                 Instruction budget (default 10000000).
 *   --timeout N               Timeout period in cycles (timeout-vpu).
 *   --save PATH               Write the workload spec to PATH.
 *   --trace PATH              Also write a trace (run/compare).
 *   --out PATH                Trace output path (trace; default
 *                             <workload>.trace.json).
 *   --metrics-out PATH        Write the per-window metrics CSV
 *                             (PowerChop mode; .jsonl writes JSONL).
 *
 * Unknown subcommands and options print usage and exit 2. --version
 * prints the release and exits 0.
 */

#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "powerchop/powerchop.hh"
#include "workload/spec_io.hh"

#ifndef POWERCHOP_VERSION
#define POWERCHOP_VERSION "unknown"
#endif

using namespace powerchop;

namespace
{

int
usage()
{
    std::fprintf(
        stderr,
        "usage: powerchop <command> [args]\n"
        "  list\n"
        "  show <workload>\n"
        "  run <workload> [--machine server|mobile] [--mode MODE]\n"
        "      [--insns N] [--timeout N] [--save PATH] [--json]\n"
        "      [--trace PATH] [--metrics-out PATH]\n"
        "  compare <workload> [--machine server|mobile] [--insns N]\n"
        "  trace <workload> [--out PATH] [--mode MODE] [--insns N]\n"
        "  --version\n"
        "modes: full-power powerchop min-power timeout-vpu drowsy-mlc\n");
    return 2;
}

/** Report a bad flag/subcommand: usage text on stderr, exit 2. */
class UsageError : public std::runtime_error
{
  public:
    explicit UsageError(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

WorkloadSpec
resolveWorkload(const std::string &arg)
{
    if (arg.find('/') != std::string::npos ||
        (arg.size() > 3 && arg.substr(arg.size() - 3) == ".wl")) {
        return loadWorkloadSpec(arg);
    }
    return findWorkload(arg);
}

SimMode
parseMode(const std::string &m)
{
    for (SimMode mode : {SimMode::FullPower, SimMode::PowerChop,
                         SimMode::MinPower, SimMode::TimeoutVpu,
                         SimMode::DrowsyMlc}) {
        if (m == simModeName(mode))
            return mode;
    }
    fatal("unknown mode '%s'", m.c_str());
}

struct Args
{
    std::string machine;
    SimMode mode = SimMode::PowerChop;
    InsnCount insns = 10'000'000;
    double timeout = 0;
    std::string save;
    bool json = false;
    std::string tracePath;
    std::string metricsOut;
    std::string out;
};

Args
parseOptions(const std::vector<std::string> &rest)
{
    Args a;
    for (std::size_t i = 0; i < rest.size(); ++i) {
        auto need = [&](const char *what) -> const std::string & {
            if (i + 1 >= rest.size())
                fatal("%s requires a value", what);
            return rest[++i];
        };
        if (rest[i] == "--machine")
            a.machine = need("--machine");
        else if (rest[i] == "--mode")
            a.mode = parseMode(need("--mode"));
        else if (rest[i] == "--insns")
            a.insns = std::strtoull(need("--insns").c_str(), nullptr, 10);
        else if (rest[i] == "--timeout")
            a.timeout = std::strtod(need("--timeout").c_str(), nullptr);
        else if (rest[i] == "--save")
            a.save = need("--save");
        else if (rest[i] == "--json")
            a.json = true;
        else if (rest[i] == "--trace")
            a.tracePath = need("--trace");
        else if (rest[i] == "--metrics-out")
            a.metricsOut = need("--metrics-out");
        else if (rest[i] == "--out")
            a.out = need("--out");
        else
            throw UsageError(csprintf("unknown option '%s'",
                                      rest[i].c_str()));
    }
    if (a.insns == 0)
        fatal("--insns must be positive");
    return a;
}

/** Attach telemetry sinks requested by flags; returns the trace
 *  recorder when --trace / trace's --out asked for one. */
void
writeTelemetry(const Args &a, const std::string &trace_path,
               const telemetry::TraceRecorder &trace,
               const telemetry::MetricsRegistry &metrics)
{
    if (!trace_path.empty()) {
        if (!telemetry::writeChromeTrace(trace_path, {&trace}))
            fatal("cannot write trace to '%s'", trace_path.c_str());
        std::printf("wrote %s (%zu events%s)\n", trace_path.c_str(),
                    trace.events().size(),
                    trace.droppedEvents()
                        ? csprintf(", %llu dropped",
                                   static_cast<unsigned long long>(
                                       trace.droppedEvents()))
                              .c_str()
                        : "");
    }
    if (!a.metricsOut.empty()) {
        const bool jsonl =
            a.metricsOut.size() > 6 &&
            a.metricsOut.substr(a.metricsOut.size() - 6) == ".jsonl";
        const bool ok = jsonl ? metrics.writeJsonl(a.metricsOut)
                              : metrics.writeCsv(a.metricsOut);
        if (!ok)
            fatal("cannot write metrics to '%s'",
                  a.metricsOut.c_str());
        std::printf("wrote %s (%zu windows)\n", a.metricsOut.c_str(),
                    metrics.rows().size());
    }
}

MachineConfig
resolveMachine(const Args &a, const WorkloadSpec &w)
{
    if (a.machine == "server")
        return serverConfig();
    if (a.machine == "mobile")
        return mobileConfig();
    if (!a.machine.empty())
        fatal("unknown machine '%s'", a.machine.c_str());
    return w.suite == Suite::MobileBench ? mobileConfig()
                                         : serverConfig();
}

void
printResult(const SimResult &r)
{
    std::printf("%s on %s [%s]\n", r.workload.c_str(),
                r.machine.c_str(), simModeName(r.mode));
    std::printf("  instructions  %llu\n",
                static_cast<unsigned long long>(r.instructions));
    std::printf("  cycles        %.0f\n", static_cast<double>(r.cycles));
    std::printf("  IPC           %.3f\n", r.ipc());
    std::printf("  avg power     %.3f W (leakage %.3f W)\n",
                r.energy.averagePower(),
                r.energy.averageLeakagePower());
    std::printf("  energy        %.4g J\n", r.energy.totalEnergy());
    std::printf("  gated: VPU %s  BPU %s  MLC half %s / quarter %s / "
                "1-way %s\n",
                pct(r.vpuGatedFraction).c_str(),
                pct(r.bpuGatedFraction).c_str(),
                pct(r.mlcHalfFraction).c_str(),
                pct(r.mlcQuarterFraction).c_str(),
                pct(r.mlcOneWayFraction).c_str());
    if (r.mode == SimMode::PowerChop) {
        std::printf("  PVT: %llu lookups, %llu hits (%.4f%% misses "
                    "per translation)\n",
                    static_cast<unsigned long long>(r.pvtLookups),
                    static_cast<unsigned long long>(r.pvtHits),
                    100 * r.pvtMissPerTranslation);
    }
    if (r.mode == SimMode::DrowsyMlc) {
        std::printf("  drowsy: avg %.1f%% of lines drowsy, %llu "
                    "wakeups\n",
                    100 * r.mlcDrowsyFraction,
                    static_cast<unsigned long long>(r.drowsyWakes));
    }
}

int
cmdList()
{
    std::printf("%-15s %-12s %7s %9s\n", "name", "suite", "phases",
                "schedule");
    for (const auto &w : allWorkloads()) {
        std::printf("%-15s %-12s %7zu %8lluK\n", w.name.c_str(),
                    suiteName(w.suite), w.phases.size(),
                    static_cast<unsigned long long>(
                        w.scheduleLength() / 1000));
    }
    return 0;
}

int
cmdShow(const std::string &name)
{
    std::fputs(formatWorkloadSpec(resolveWorkload(name)).c_str(),
               stdout);
    return 0;
}

int
cmdRun(const std::string &name, const Args &a)
{
    WorkloadSpec w = resolveWorkload(name);
    if (!a.save.empty()) {
        saveWorkloadSpec(w, a.save);
        std::printf("wrote %s\n", a.save.c_str());
    }
    MachineConfig m = resolveMachine(a, w);
    SimOptions opts;
    opts.mode = a.mode;
    opts.maxInstructions = a.insns;
    opts.timeoutCycles = a.timeout;

    telemetry::TraceRecorder trace;
    telemetry::MetricsRegistry metrics;
    if (!a.tracePath.empty())
        opts.trace = &trace;
    if (!a.metricsOut.empty()) {
        if (a.mode != SimMode::PowerChop)
            fatal("--metrics-out requires --mode powerchop");
        opts.metrics = &metrics;
    }

    SimResult r = simulate(m, w, opts);
    if (a.json)
        std::printf("%s\n", r.toJson().c_str());
    else
        printResult(r);
    writeTelemetry(a, a.tracePath, trace, metrics);
    return 0;
}

int
cmdTrace(const std::string &name, const Args &a)
{
    WorkloadSpec w = resolveWorkload(name);
    MachineConfig m = resolveMachine(a, w);
    SimOptions opts;
    opts.mode = a.mode;
    opts.maxInstructions = a.insns;
    opts.timeoutCycles = a.timeout;

    telemetry::TraceRecorder trace;
    telemetry::MetricsRegistry metrics;
    opts.trace = &trace;
    if (!a.metricsOut.empty() && a.mode == SimMode::PowerChop)
        opts.metrics = &metrics;

    SimResult r = simulate(m, w, opts);
    printResult(r);

    const std::string path =
        !a.out.empty() ? a.out : w.name + ".trace.json";
    writeTelemetry(a, path, trace, metrics);
    return 0;
}

int
cmdCompare(const std::string &name, const Args &a)
{
    WorkloadSpec w = resolveWorkload(name);
    MachineConfig m = resolveMachine(a, w);
    ComparisonRuns runs = runComparison(m, w, a.insns);
    printResult(runs.fullPower);
    std::printf("\n");
    printResult(runs.powerChop);
    std::printf("\n");
    printResult(runs.minPower);
    std::printf("\nPowerChop vs full power: slowdown %s, power %s, "
                "energy %s, leakage %s\n",
                pct(runs.powerChop.slowdownVs(runs.fullPower)).c_str(),
                pct(runs.powerChop.powerReductionVs(runs.fullPower))
                    .c_str(),
                pct(runs.powerChop.energyReductionVs(runs.fullPower))
                    .c_str(),
                pct(runs.powerChop.leakageReductionVs(runs.fullPower))
                    .c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();

    std::vector<std::string> rest;
    for (int i = 3; i < argc; ++i)
        rest.emplace_back(argv[i]);

    try {
        std::string cmd = argv[1];
        if (cmd == "--version" || cmd == "version") {
            std::printf("powerchop %s\n", POWERCHOP_VERSION);
            return 0;
        }
        if (cmd == "list" && argc == 2)
            return cmdList();
        if (cmd == "show" && argc == 3)
            return cmdShow(argv[2]);
        if (cmd == "run" && argc >= 3)
            return cmdRun(argv[2], parseOptions(rest));
        if (cmd == "compare" && argc >= 3)
            return cmdCompare(argv[2], parseOptions(rest));
        if (cmd == "trace" && argc >= 3)
            return cmdTrace(argv[2], parseOptions(rest));
    } catch (const UsageError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return usage();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
    // Unknown subcommand (or malformed arity): usage, exit 2.
    return usage();
}
